//! Storage benches (ablation arms for DESIGN.md §6.3/§6.5): index vs
//! full-scan search, blob cache hit vs backend miss, and WAL fsync policy.

use bytes::Bytes;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gallery_store::blob::cache::CachedBlobStore;
use gallery_store::blob::memory::MemoryBlobStore;
use gallery_store::{
    ColumnDef, Constraint, LatencyModel, MetadataStore, ObjectStore, Op, Query, Record, SyncPolicy,
    TableSchema, ValueType,
};
use std::hint::black_box;
use std::sync::Arc;

fn schema() -> TableSchema {
    TableSchema::new(
        "instances",
        "id",
        vec![
            ColumnDef::new("id", ValueType::Str),
            ColumnDef::new("city", ValueType::Str).hash_indexed(),
            ColumnDef::new("mape", ValueType::Float).btree_indexed(),
            ColumnDef::new("notes", ValueType::Str),
        ],
    )
    .unwrap()
}

fn populated(n: usize) -> MetadataStore {
    let store = MetadataStore::in_memory();
    store.create_table(schema()).unwrap();
    for i in 0..n {
        store
            .insert(
                "instances",
                Record::new()
                    .set("id", format!("i{i:07}"))
                    .set("city", format!("city_{:03}", i % 200))
                    .set("mape", (i % 1000) as f64 / 1000.0)
                    .set("notes", format!("note {i}")),
            )
            .unwrap();
    }
    store
}

fn bench_search(c: &mut Criterion) {
    let mut group = c.benchmark_group("search");
    for n in [1_000usize, 10_000, 100_000] {
        let store = populated(n);
        group.bench_with_input(BenchmarkId::new("indexed_eq", n), &n, |b, _| {
            let q = Query::all().and(Constraint::eq("city", "city_042"));
            b.iter(|| black_box(store.query("instances", &q).unwrap()))
        });
        group.bench_with_input(BenchmarkId::new("indexed_range", n), &n, |b, _| {
            let q = Query::all().and(Constraint::lt("mape", 0.01));
            b.iter(|| black_box(store.query("instances", &q).unwrap()))
        });
        group.bench_with_input(BenchmarkId::new("full_scan", n), &n, |b, _| {
            let q = Query::all().and(Constraint::new("notes", Op::Contains, "note 999999"));
            b.iter(|| black_box(store.query("instances", &q).unwrap()))
        });
        group.bench_with_input(BenchmarkId::new("pk_lookup", n), &n, |b, _| {
            b.iter(|| black_box(store.get("instances", "i0000042").unwrap()))
        });
    }
    group.finish();
}

fn bench_insert(c: &mut Criterion) {
    let mut group = c.benchmark_group("insert");
    group.bench_function("in_memory_100rows", |b| {
        b.iter_batched(
            || {
                let store = MetadataStore::in_memory();
                store.create_table(schema()).unwrap();
                store
            },
            |store| {
                for i in 0..100 {
                    store
                        .insert(
                            "instances",
                            Record::new()
                                .set("id", format!("i{i}"))
                                .set("city", "sf")
                                .set("mape", 0.1)
                                .set("notes", "n"),
                        )
                        .unwrap();
                }
                store
            },
            criterion::BatchSize::SmallInput,
        )
    });
    for (name, sync) in [
        ("wal_nosync_10rows", SyncPolicy::Never),
        ("wal_fsync_10rows", SyncPolicy::Always),
    ] {
        group.bench_function(name, |b| {
            b.iter_batched(
                || {
                    let dir = std::env::temp_dir().join(format!(
                        "gallery-bench-wal-{name}-{}",
                        rand::random::<u64>()
                    ));
                    std::fs::create_dir_all(&dir).unwrap();
                    let store = MetadataStore::durable(dir.join("wal.log"), sync).unwrap();
                    store.create_table(schema()).unwrap();
                    (store, dir)
                },
                |(store, dir)| {
                    for i in 0..10 {
                        store
                            .insert(
                                "instances",
                                Record::new()
                                    .set("id", format!("i{i}"))
                                    .set("city", "sf")
                                    .set("mape", 0.1)
                                    .set("notes", "n"),
                            )
                            .unwrap();
                    }
                    let _ = std::fs::remove_dir_all(&dir);
                    store
                },
                criterion::BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

fn bench_blob_cache(c: &mut Criterion) {
    let mut group = c.benchmark_group("blob_cache");
    let backend = Arc::new(MemoryBlobStore::new().with_latency(LatencyModel::object_store_like()));
    let cache = CachedBlobStore::new(backend.clone() as Arc<dyn ObjectStore>, 64 * 1024 * 1024);
    let blob = Bytes::from(vec![7u8; 256 * 1024]);
    let hot = cache.put(blob.clone()).unwrap().location;
    let cold: Vec<_> = (0..64)
        .map(|_| backend.put(blob.clone()).unwrap().location)
        .collect();

    group.bench_function("hit", |b| b.iter(|| black_box(cache.get(&hot).unwrap())));
    let mut i = 0usize;
    group.bench_function("backend_direct", |b| {
        b.iter(|| {
            i = (i + 1) % cold.len();
            black_box(backend.get(&cold[i]).unwrap())
        })
    });
    group.finish();
}

criterion_group!(benches, bench_search, bench_insert, bench_blob_cache);
criterion_main!(benches);
