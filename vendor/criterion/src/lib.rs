//! Offline vendored stand-in for `criterion`.
//!
//! Keeps the `criterion_group!`/`criterion_main!`/`benchmark_group` API so
//! the repo's benches compile and run, but measures with a simple
//! calibrated wall-clock loop (no statistics, plots, or comparisons).
//! Each benchmark reports mean ns/iter on stdout.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Target measurement time per benchmark. Kept short: these runs are for
/// smoke-level numbers, not publication-grade statistics.
const MEASURE_TARGET: Duration = Duration::from_millis(20);
const WARMUP_ITERS: u64 = 3;

/// Top-level harness handle.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            sample_size: 100,
        }
    }

    pub fn bench_function<F>(&mut self, id: impl IntoLabel, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one("", &id.into_label(), &mut f);
        self
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; this harness sizes runs by time.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Accepted for API compatibility.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    pub fn bench_function<F>(&mut self, id: impl IntoLabel, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&self.name, &id.into_label(), &mut f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(&self.name, &id.into_label(), &mut |b: &mut Bencher| {
            f(b, input)
        });
        self
    }

    pub fn finish(self) {}
}

fn run_one(group: &str, label: &str, f: &mut dyn FnMut(&mut Bencher)) {
    let mut bencher = Bencher {
        mean_ns: 0.0,
        iters: 0,
    };
    f(&mut bencher);
    let full = if group.is_empty() {
        label.to_string()
    } else {
        format!("{group}/{label}")
    };
    println!(
        "bench: {full:<48} {:>12.1} ns/iter ({} iters)",
        bencher.mean_ns, bencher.iters
    );
}

/// Passed to the benchmark closure; runs the measured routine.
pub struct Bencher {
    mean_ns: f64,
    iters: u64,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        for _ in 0..WARMUP_ITERS {
            black_box(routine());
        }
        // Calibrate batch size from a single timed call, then loop until
        // the target measurement time elapses.
        let start = Instant::now();
        let mut iters = 0u64;
        while start.elapsed() < MEASURE_TARGET {
            black_box(routine());
            iters += 1;
        }
        let elapsed = start.elapsed();
        self.record(elapsed, iters);
    }

    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        for _ in 0..WARMUP_ITERS.min(2) {
            black_box(routine(setup()));
        }
        let mut measured = Duration::ZERO;
        let mut iters = 0u64;
        while measured < MEASURE_TARGET {
            let input = setup(); // setup excluded from measurement
            let start = Instant::now();
            black_box(routine(input));
            measured += start.elapsed();
            iters += 1;
        }
        self.record(measured, iters);
    }

    fn record(&mut self, elapsed: Duration, iters: u64) {
        self.iters = iters.max(1);
        self.mean_ns = elapsed.as_nanos() as f64 / self.iters as f64;
    }
}

/// Identifier combining a function name and a parameter.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

/// How `iter_batched` amortizes setup; accepted for API compatibility.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// Anything usable as a benchmark label.
pub trait IntoLabel {
    fn into_label(self) -> String;
}

impl IntoLabel for &str {
    fn into_label(self) -> String {
        self.to_string()
    }
}

impl IntoLabel for String {
    fn into_label(self) -> String {
        self
    }
}

impl IntoLabel for BenchmarkId {
    fn into_label(self) -> String {
        self.label
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(10);
        let mut count = 0u64;
        group.bench_function("count", |b| b.iter(|| count += 1));
        group.bench_with_input(BenchmarkId::new("with_input", 4), &4u64, |b, &n| {
            b.iter(|| black_box(n * 2))
        });
        group.finish();
        assert!(count > 0);
    }

    #[test]
    fn iter_batched_consumes_inputs() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g2");
        group.bench_function("batched", |b| {
            b.iter_batched(
                || vec![1u8, 2, 3],
                |v| v.into_iter().map(u64::from).sum::<u64>(),
                BatchSize::SmallInput,
            )
        });
        group.finish();
    }
}
