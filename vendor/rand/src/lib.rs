//! Offline vendored stand-in for `rand` 0.8.
//!
//! Implements the subset Gallery uses: [`RngCore`], the [`Rng`] extension
//! (`gen`, `gen_range`, `gen_bool`), [`SeedableRng::seed_from_u64`],
//! [`rngs::StdRng`] (xoshiro256++ seeded through splitmix64),
//! [`thread_rng`] and [`random`]. Determinism contract: the same seed
//! always yields the same sequence — that is all the repo's seeded tests
//! and experiments rely on; the streams differ from upstream `rand`.

use std::cell::RefCell;

/// Low-level source of random bits.
pub trait RngCore {
    fn next_u32(&mut self) -> u32;
    fn next_u64(&mut self) -> u64;
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// User-facing convenience methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// A uniformly random value of a [`Standard`]-samplable type
    /// (`f64` is uniform in `[0, 1)`).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Uniform sample from a half-open or inclusive range.
    fn gen_range<T, R2: SampleRange<T>>(&mut self, range: R2) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Bernoulli draw: `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        if p >= 1.0 {
            return true;
        }
        if p <= 0.0 {
            return false;
        }
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore> Rng for R {}

/// Types samplable by [`Rng::gen`] (the crate's `Standard` distribution).
pub trait Standard: Sized {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! range_int {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as $u).wrapping_sub(self.start as $u);
                // Multiply-shift rejection-free mapping; modulo bias is
                // negligible for the spans used here, but use widening
                // multiply where cheap for uniformity.
                let r = rng.next_u64() as $u;
                self.start.wrapping_add((r % span) as $t)
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                let span = (end as $u).wrapping_sub(start as $u).wrapping_add(1);
                if span == 0 {
                    // full domain
                    return rng.next_u64() as $t;
                }
                let r = rng.next_u64() as $u;
                start.wrapping_add((r % span) as $t)
            }
        }
    )*};
}
range_int!(
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => u64, i16 => u64, i32 => u64, i64 => u64, isize => u64
);

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + f64::sample_standard(rng) * (self.end - self.start)
    }
}

impl SampleRange<f64> for std::ops::RangeInclusive<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "gen_range: empty range");
        start + f64::sample_standard(rng) * (end - start)
    }
}

impl SampleRange<f32> for std::ops::Range<f32> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + f32::sample_standard(rng) * (self.end - self.start)
    }
}

/// RNGs constructible from seeds.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;

    /// Seed from ambient entropy (time + thread); NOT reproducible.
    fn from_entropy() -> Self {
        Self::seed_from_u64(entropy_seed())
    }
}

fn entropy_seed() -> u64 {
    use std::time::{SystemTime, UNIX_EPOCH};
    let nanos = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0xDEAD_BEEF);
    let addr = &nanos as *const _ as u64; // ASLR noise
    splitmix64(nanos ^ addr.rotate_left(32))
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// The standard deterministic RNG: xoshiro256++ (Blackman & Vigna),
    /// state expanded from the seed via splitmix64.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut x = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                *slot = splitmix64(x);
            }
            if s == [0; 4] {
                s[0] = 1; // all-zero state is a fixed point
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }

        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn fill_bytes(&mut self, dest: &mut [u8]) {
            let mut chunks = dest.chunks_exact_mut(8);
            for chunk in &mut chunks {
                chunk.copy_from_slice(&self.next_u64().to_le_bytes());
            }
            let rem = chunks.into_remainder();
            if !rem.is_empty() {
                let bytes = self.next_u64().to_le_bytes();
                rem.copy_from_slice(&bytes[..rem.len()]);
            }
        }
    }

    /// Handle to the thread-local RNG.
    pub struct ThreadRng;

    impl RngCore for ThreadRng {
        fn next_u64(&mut self) -> u64 {
            super::THREAD_RNG.with(|r| r.borrow_mut().next_u64())
        }
        fn next_u32(&mut self) -> u32 {
            super::THREAD_RNG.with(|r| r.borrow_mut().next_u32())
        }
        fn fill_bytes(&mut self, dest: &mut [u8]) {
            super::THREAD_RNG.with(|r| r.borrow_mut().fill_bytes(dest))
        }
    }
}

thread_local! {
    static THREAD_RNG: RefCell<rngs::StdRng> =
        RefCell::new(<rngs::StdRng as SeedableRng>::from_entropy());
}

/// The per-thread RNG (entropy-seeded once per thread).
pub fn thread_rng() -> rngs::ThreadRng {
    rngs::ThreadRng
}

/// One random value from the thread RNG.
pub fn random<T: Standard>() -> T {
    T::sample_standard(&mut thread_rng())
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn gen_range_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v: i64 = rng.gen_range(-20i64..20);
            assert!((-20..20).contains(&v));
            let u: usize = rng.gen_range(0..=5usize);
            assert!(u <= 5);
            let f: f64 = rng.gen_range(0.25..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_f64_unit_interval() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn gen_bool_rate() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_700..3_300).contains(&hits), "hits {hits}");
    }

    #[test]
    fn fill_bytes_covers_tail() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
