//! Offline vendored stand-in for `serde_derive`.
//!
//! A zero-dependency proc macro (no syn/quote) that walks the raw
//! `TokenTree`s of the derive input and emits impls of the simplified
//! `serde::Serialize` / `serde::Deserialize` traits (the `Content`-tree
//! model in the sibling `serde` stub). Supported shapes: named and tuple
//! structs; enums with unit / newtype / tuple / struct variants encoded
//! externally tagged; container attr `untagged`; field attrs `rename`,
//! `default`, `skip_serializing_if`.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_input(input);
    gen_serialize(&item)
        .parse()
        .expect("generated Serialize impl parses")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_input(input);
    gen_deserialize(&item)
        .parse()
        .expect("generated Deserialize impl parses")
}

// ---------------------------------------------------------------------------
// Mini AST
// ---------------------------------------------------------------------------

struct Field {
    ident: String,
    rename: Option<String>,
    default: bool,
    skip_if: Option<String>,
}

impl Field {
    fn key(&self) -> &str {
        self.rename.as_deref().unwrap_or(&self.ident)
    }
}

enum Shape {
    Unit,
    /// Parenthesised payload with the given arity (1 = newtype).
    Tuple(usize),
    Struct(Vec<Field>),
}

struct Variant {
    ident: String,
    shape: Shape,
}

enum Data {
    NamedStruct(Vec<Field>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

struct Item {
    name: String,
    untagged: bool,
    data: Data,
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

/// serde attrs collected from `#[serde(...)]` lists.
#[derive(Default)]
struct SerdeAttrs {
    untagged: bool,
    rename: Option<String>,
    default: bool,
    skip_if: Option<String>,
}

fn parse_input(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;

    let container_attrs = take_attrs(&tokens, &mut i);
    skip_visibility(&tokens, &mut i);

    let keyword = expect_ident(&tokens, &mut i);
    let name = expect_ident(&tokens, &mut i);
    skip_generics(&tokens, &mut i);

    let data = match keyword.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Data::NamedStruct(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Data::TupleStruct(count_tuple_fields(g.stream()))
            }
            _ => Data::UnitStruct,
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Data::Enum(parse_variants(g.stream()))
            }
            _ => panic!("serde_derive: enum `{name}` has no body"),
        },
        other => panic!("serde_derive: cannot derive for `{other}` items"),
    };

    Item {
        name,
        untagged: container_attrs.untagged,
        data,
    }
}

/// Consume leading `#[...]` attributes, returning merged serde attrs.
fn take_attrs(tokens: &[TokenTree], i: &mut usize) -> SerdeAttrs {
    let mut attrs = SerdeAttrs::default();
    loop {
        match (tokens.get(*i), tokens.get(*i + 1)) {
            (Some(TokenTree::Punct(p)), Some(TokenTree::Group(g)))
                if p.as_char() == '#' && g.delimiter() == Delimiter::Bracket =>
            {
                parse_attr_group(g.stream(), &mut attrs);
                *i += 2;
            }
            _ => return attrs,
        }
    }
}

/// Inspect one `[...]` attribute body; merge `serde(...)` keys into `attrs`.
fn parse_attr_group(stream: TokenStream, attrs: &mut SerdeAttrs) {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    match (tokens.first(), tokens.get(1)) {
        (Some(TokenTree::Ident(id)), Some(TokenTree::Group(g)))
            if id.to_string() == "serde" && g.delimiter() == Delimiter::Parenthesis =>
        {
            parse_serde_list(g.stream(), attrs);
        }
        _ => {} // doc comments, cfg, derive, …
    }
}

/// Parse `rename = "..."` / `default` / `skip_serializing_if = "..."` /
/// `untagged` from the inside of `serde(...)`.
fn parse_serde_list(stream: TokenStream, attrs: &mut SerdeAttrs) {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut i = 0;
    while i < tokens.len() {
        let key = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            _ => {
                i += 1;
                continue;
            }
        };
        i += 1;
        let value = match (tokens.get(i), tokens.get(i + 1)) {
            (Some(TokenTree::Punct(p)), Some(TokenTree::Literal(lit))) if p.as_char() == '=' => {
                i += 2;
                Some(unquote(&lit.to_string()))
            }
            _ => None,
        };
        match (key.as_str(), value) {
            ("untagged", _) => attrs.untagged = true,
            ("default", _) => attrs.default = true,
            ("rename", Some(v)) => attrs.rename = Some(v),
            ("skip_serializing_if", Some(v)) => attrs.skip_if = Some(v),
            (other, _) => panic!("serde_derive: unsupported serde attribute `{other}`"),
        }
        // skip the separating comma, if any
        if let Some(TokenTree::Punct(p)) = tokens.get(i) {
            if p.as_char() == ',' {
                i += 1;
            }
        }
    }
}

fn unquote(lit: &str) -> String {
    lit.trim_matches('"').to_string()
}

fn skip_visibility(tokens: &[TokenTree], i: &mut usize) {
    if let Some(TokenTree::Ident(id)) = tokens.get(*i) {
        if id.to_string() == "pub" {
            *i += 1;
            if let Some(TokenTree::Group(g)) = tokens.get(*i) {
                if g.delimiter() == Delimiter::Parenthesis {
                    *i += 1; // pub(crate) / pub(super)
                }
            }
        }
    }
}

fn expect_ident(tokens: &[TokenTree], i: &mut usize) -> String {
    match tokens.get(*i) {
        Some(TokenTree::Ident(id)) => {
            *i += 1;
            id.to_string()
        }
        other => panic!("serde_derive: expected identifier, found {other:?}"),
    }
}

fn skip_generics(tokens: &[TokenTree], i: &mut usize) {
    if let Some(TokenTree::Punct(p)) = tokens.get(*i) {
        if p.as_char() == '<' {
            let mut depth = 0i32;
            while let Some(tok) = tokens.get(*i) {
                if let TokenTree::Punct(p) = tok {
                    match p.as_char() {
                        '<' => depth += 1,
                        '>' => {
                            depth -= 1;
                            if depth == 0 {
                                *i += 1;
                                return;
                            }
                        }
                        _ => {}
                    }
                }
                *i += 1;
            }
        }
    }
}

/// Parse `ident: Type, …` possibly with per-field attrs and visibility.
fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let attrs = take_attrs(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        skip_visibility(&tokens, &mut i);
        let ident = expect_ident(&tokens, &mut i);
        // ':'
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => panic!("serde_derive: expected `:` after field `{ident}`, found {other:?}"),
        }
        skip_type(&tokens, &mut i);
        fields.push(Field {
            ident,
            rename: attrs.rename,
            default: attrs.default,
            skip_if: attrs.skip_if,
        });
    }
    fields
}

/// Skip a type expression up to (and including) the next top-level comma.
/// Bracketed groups arrive pre-nested; only `<`/`>` need depth tracking.
fn skip_type(tokens: &[TokenTree], i: &mut usize) {
    let mut angle = 0i32;
    let mut prev_dash = false;
    while let Some(tok) = tokens.get(*i) {
        if let TokenTree::Punct(p) = tok {
            match p.as_char() {
                '<' => angle += 1,
                '>' if !prev_dash => angle -= 1, // `->` does not close a generic
                ',' if angle == 0 => {
                    *i += 1;
                    return;
                }
                _ => {}
            }
            prev_dash = p.as_char() == '-';
        } else {
            prev_dash = false;
        }
        *i += 1;
    }
}

/// Count comma-separated entries in a tuple-struct / tuple-variant body.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 0;
    let mut i = 0;
    while i < tokens.len() {
        let _attrs = take_attrs(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        skip_visibility(&tokens, &mut i);
        skip_type(&tokens, &mut i);
        count += 1;
    }
    count
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let _attrs = take_attrs(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let ident = expect_ident(&tokens, &mut i);
        let shape = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                Shape::Tuple(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                Shape::Struct(parse_named_fields(g.stream()))
            }
            _ => Shape::Unit,
        };
        // skip the separating comma, if any
        if let Some(TokenTree::Punct(p)) = tokens.get(i) {
            if p.as_char() == ',' {
                i += 1;
            }
        }
        variants.push(Variant { ident, shape });
    }
    variants
}

// ---------------------------------------------------------------------------
// Code generation: Serialize
// ---------------------------------------------------------------------------

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.data {
        Data::UnitStruct => "::serde::Content::Null".to_string(),
        Data::TupleStruct(1) => "::serde::Serialize::to_content(&self.0)".to_string(),
        Data::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|idx| format!("::serde::Serialize::to_content(&self.{idx})"))
                .collect();
            format!(
                "::serde::Content::Seq(::std::vec::Vec::from([{}]))",
                items.join(", ")
            )
        }
        Data::NamedStruct(fields) => {
            gen_serialize_fields(fields, "self.", "__m") + "\n        ::serde::Content::Map(__m)"
        }
        Data::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| gen_serialize_variant(name, v, item.untagged))
                .collect();
            format!("match self {{\n{}\n        }}", arms.join("\n"))
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n    fn to_content(&self) -> ::serde::Content {{\n        {body}\n    }}\n}}\n"
    )
}

/// Emit `let mut <map>; <push each field>` for named fields reached via
/// `access` (e.g. `self.` or `` for bound idents).
fn gen_serialize_fields(fields: &[Field], access: &str, map: &str) -> String {
    let mut out = format!(
        "let mut {map}: ::std::vec::Vec<(::std::string::String, ::serde::Content)> = ::std::vec::Vec::with_capacity({});\n",
        fields.len()
    );
    for f in fields {
        let expr = format!("&{access}{}", f.ident);
        let push = format!(
            "        {map}.push((\"{}\".to_string(), ::serde::Serialize::to_content({expr})));",
            f.key()
        );
        match &f.skip_if {
            Some(pred) => out.push_str(&format!(
                "        if !({pred}({expr})) {{\n    {push}\n        }}\n"
            )),
            None => {
                out.push_str(&push);
                out.push('\n');
            }
        }
    }
    out
}

fn gen_serialize_variant(name: &str, v: &Variant, untagged: bool) -> String {
    let vname = &v.ident;
    match &v.shape {
        Shape::Unit => {
            let content = if untagged {
                "::serde::Content::Null".to_string()
            } else {
                format!("::serde::Content::Str(\"{vname}\".to_string())")
            };
            format!("            {name}::{vname} => {content},")
        }
        Shape::Tuple(n) => {
            let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
            let inner = if *n == 1 {
                "::serde::Serialize::to_content(__f0)".to_string()
            } else {
                let items: Vec<String> = binds
                    .iter()
                    .map(|b| format!("::serde::Serialize::to_content({b})"))
                    .collect();
                format!(
                    "::serde::Content::Seq(::std::vec::Vec::from([{}]))",
                    items.join(", ")
                )
            };
            let content = if untagged {
                inner
            } else {
                format!(
                    "::serde::Content::Map(::std::vec::Vec::from([(\"{vname}\".to_string(), {inner})]))"
                )
            };
            format!(
                "            {name}::{vname}({}) => {content},",
                binds.join(", ")
            )
        }
        Shape::Struct(fields) => {
            let binds: Vec<String> = fields.iter().map(|f| f.ident.clone()).collect();
            let fill = gen_serialize_fields(fields, "", "__vm");
            let inner = "::serde::Content::Map(__vm)";
            let content = if untagged {
                inner.to_string()
            } else {
                format!(
                    "::serde::Content::Map(::std::vec::Vec::from([(\"{vname}\".to_string(), {inner})]))"
                )
            };
            format!(
                "            {name}::{vname} {{ {} }} => {{\n        {fill}        {content}\n            }},",
                binds.join(", ")
            )
        }
    }
}

// ---------------------------------------------------------------------------
// Code generation: Deserialize
// ---------------------------------------------------------------------------

// Generated code expands inside the deriving crate's module, where prelude
// names like `Result` may be shadowed (e.g. `type Result<T> = ...` aliases),
// so every prelude item must be emitted fully qualified.
const RESULT: &str = "::std::result::Result";
const OK: &str = "::std::result::Result::Ok";
const ERR: &str = "::std::result::Result::Err";
const SOME: &str = "::std::option::Option::Some";
const NONE: &str = "::std::option::Option::None";

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.data {
        Data::UnitStruct => format!(
            "match __c {{ ::serde::Content::Null => {OK}({name}), __other => {ERR}(::serde::DeError::expected(\"null\", __other, \"{name}\")) }}"
        ),
        Data::TupleStruct(1) => {
            format!("{OK}({name}(::serde::Deserialize::from_content(__c)?))")
        }
        Data::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|idx| format!("::serde::Deserialize::from_content(&__items[{idx}])?"))
                .collect();
            format!(
                "match __c {{\n            ::serde::Content::Seq(__items) if __items.len() == {n} => {OK}({name}({})),\n            __other => {ERR}(::serde::DeError::expected(\"sequence of {n}\", __other, \"{name}\")),\n        }}",
                items.join(", ")
            )
        }
        Data::NamedStruct(fields) => {
            let build = gen_deserialize_fields(fields, name, "__m");
            format!(
                "let __m = match __c {{\n            ::serde::Content::Map(__m) => __m,\n            __other => return {ERR}(::serde::DeError::expected(\"map\", __other, \"{name}\")),\n        }};\n        {OK}({name} {{\n{build}        }})"
            )
        }
        Data::Enum(variants) if item.untagged => gen_deserialize_untagged(name, variants),
        Data::Enum(variants) => gen_deserialize_tagged(name, variants),
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n    fn from_content(__c: &::serde::Content) -> {RESULT}<Self, ::serde::DeError> {{\n        {body}\n    }}\n}}\n"
    )
}

/// Emit `field: <decode>,` lines for a struct literal, reading keys from
/// the map binding `map`.
fn gen_deserialize_fields(fields: &[Field], context: &str, map: &str) -> String {
    let mut out = String::new();
    for f in fields {
        let key = f.key();
        let missing = if f.default {
            "::std::default::Default::default()".to_string()
        } else {
            // Option fields decode Null to None; everything else reports
            // the missing key.
            format!(
                "::serde::Deserialize::from_content(&::serde::Content::Null).map_err(|_| ::serde::DeError::missing_field(\"{key}\", \"{context}\"))?"
            )
        };
        out.push_str(&format!(
            "            {}: match ::serde::__find({map}, \"{key}\") {{\n                {SOME}(__v) => ::serde::Deserialize::from_content(__v)?,\n                {NONE} => {missing},\n            }},\n",
            f.ident
        ));
    }
    out
}

fn gen_deserialize_tagged(name: &str, variants: &[Variant]) -> String {
    // Unit variants arrive as bare strings.
    let unit_arms: Vec<String> = variants
        .iter()
        .filter(|v| matches!(v.shape, Shape::Unit))
        .map(|v| format!("                \"{0}\" => {OK}({name}::{0}),", v.ident))
        .collect();

    // Payload variants arrive as single-key maps.
    let payload_arms: Vec<String> = variants
        .iter()
        .filter_map(|v| {
            let vname = &v.ident;
            match &v.shape {
                Shape::Unit => None,
                Shape::Tuple(1) => Some(format!(
                    "                \"{vname}\" => {OK}({name}::{vname}(::serde::Deserialize::from_content(__v)?)),"
                )),
                Shape::Tuple(n) => {
                    let items: Vec<String> = (0..*n)
                        .map(|idx| format!("::serde::Deserialize::from_content(&__items[{idx}])?"))
                        .collect();
                    Some(format!(
                        "                \"{vname}\" => match __v {{\n                    ::serde::Content::Seq(__items) if __items.len() == {n} => {OK}({name}::{vname}({})),\n                    __other => {ERR}(::serde::DeError::expected(\"sequence of {n}\", __other, \"{name}::{vname}\")),\n                }},",
                        items.join(", ")
                    ))
                }
                Shape::Struct(fields) => {
                    let build = gen_deserialize_fields(fields, &format!("{name}::{vname}"), "__vm");
                    Some(format!(
                        "                \"{vname}\" => {{\n                    let __vm = match __v {{\n                        ::serde::Content::Map(__vm) => __vm,\n                        __other => return {ERR}(::serde::DeError::expected(\"map\", __other, \"{name}::{vname}\")),\n                    }};\n                    {OK}({name}::{vname} {{\n{build}                    }})\n                }},"
                    ))
                }
            }
        })
        .collect();

    format!(
        "match __c {{\n            ::serde::Content::Str(__s) => match __s.as_str() {{\n{}\n                __other => {ERR}(::serde::DeError::unknown_variant(__other, \"{name}\")),\n            }},\n            ::serde::Content::Map(__m) if __m.len() == 1 => {{\n                let (__k, __v) = &__m[0];\n                match __k.as_str() {{\n{}\n                    __other => {ERR}(::serde::DeError::unknown_variant(__other, \"{name}\")),\n                }}\n            }}\n            __other => {ERR}(::serde::DeError::expected(\"string or single-key map\", __other, \"{name}\")),\n        }}",
        unit_arms.join("\n"),
        payload_arms.join("\n")
    )
}

fn gen_deserialize_untagged(name: &str, variants: &[Variant]) -> String {
    let mut out = String::new();
    for v in variants {
        let vname = &v.ident;
        let attempt = match &v.shape {
            Shape::Unit => format!(
                "        if let ::serde::Content::Null = __c {{ return {OK}({name}::{vname}); }}\n"
            ),
            Shape::Tuple(1) => format!(
                "        {{\n            let __r: {RESULT}<Self, ::serde::DeError> = (|| {OK}({name}::{vname}(::serde::Deserialize::from_content(__c)?)))();\n            if let {OK}(__v) = __r {{ return {OK}(__v); }}\n        }}\n"
            ),
            Shape::Tuple(n) => {
                let items: Vec<String> = (0..*n)
                    .map(|idx| format!("::serde::Deserialize::from_content(&__items[{idx}])?"))
                    .collect();
                format!(
                    "        if let ::serde::Content::Seq(__items) = __c {{\n            if __items.len() == {n} {{\n                let __r: {RESULT}<Self, ::serde::DeError> = (|| {OK}({name}::{vname}({})))();\n                if let {OK}(__v) = __r {{ return {OK}(__v); }}\n            }}\n        }}\n",
                    items.join(", ")
                )
            }
            Shape::Struct(fields) => {
                let build = gen_deserialize_fields(fields, &format!("{name}::{vname}"), "__vm");
                format!(
                    "        if let ::serde::Content::Map(__vm) = __c {{\n            let __r: {RESULT}<Self, ::serde::DeError> = (|| {OK}({name}::{vname} {{\n{build}            }}))();\n            if let {OK}(__v) = __r {{ return {OK}(__v); }}\n        }}\n"
                )
            }
        };
        out.push_str(&attempt);
    }
    out.push_str(&format!(
        "        {ERR}(::serde::DeError::new(\"data did not match any variant of untagged enum {name}\"))"
    ));
    out
}
