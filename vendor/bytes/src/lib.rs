//! Offline vendored stand-in for the `bytes` crate.
//!
//! The build container has no network access to crates.io, so the
//! workspace vendors a minimal, API-compatible subset of `bytes`: a
//! cheaply cloneable, sliceable immutable buffer ([`Bytes`]), a growable
//! builder ([`BytesMut`]), and the handful of [`Buf`]/[`BufMut`] cursor
//! methods the wire codec uses. Semantics match the real crate for the
//! subset implemented; anything else is deliberately absent.

use std::borrow::Borrow;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::Deref;
use std::sync::Arc;

/// A cheaply cloneable, contiguous, immutable slice of memory.
///
/// Clones share the same backing allocation; `split_to` and `slice`
/// produce zero-copy views.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty buffer (no allocation).
    pub fn new() -> Self {
        Bytes::default()
    }

    /// Wrap a static slice. (The vendored version copies once; the
    /// lifetime guarantee of the original crate is not needed here.)
    pub fn from_static(slice: &'static [u8]) -> Self {
        Bytes::copy_from_slice(slice)
    }

    /// Copy an arbitrary slice into a new buffer.
    pub fn copy_from_slice(slice: &[u8]) -> Self {
        let data: Arc<[u8]> = Arc::from(slice);
        Bytes {
            start: 0,
            end: data.len(),
            data,
        }
    }

    pub fn len(&self) -> usize {
        self.end - self.start
    }

    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    pub fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }

    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }

    /// Split off and return the first `at` bytes, advancing `self` past
    /// them. Panics if `at > len` (same contract as the real crate).
    pub fn split_to(&mut self, at: usize) -> Bytes {
        assert!(at <= self.len(), "split_to out of bounds");
        let head = Bytes {
            data: Arc::clone(&self.data),
            start: self.start,
            end: self.start + at,
        };
        self.start += at;
        head
    }

    /// Zero-copy subrange view.
    pub fn slice(&self, range: impl std::ops::RangeBounds<usize>) -> Bytes {
        use std::ops::Bound;
        let start = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len(),
        };
        assert!(start <= end && end <= self.len());
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + start,
            end: self.start + end,
        }
    }

    // ---- Buf-style cursor reads (consume from the front) ----

    pub fn get_u8(&mut self) -> u8 {
        let v = self.as_slice()[0];
        self.start += 1;
        v
    }

    pub fn get_u32_le(&mut self) -> u32 {
        let s = self.as_slice();
        let v = u32::from_le_bytes([s[0], s[1], s[2], s[3]]);
        self.start += 4;
        v
    }

    pub fn get_f64_le(&mut self) -> f64 {
        let s = self.as_slice();
        let mut b = [0u8; 8];
        b.copy_from_slice(&s[..8]);
        self.start += 8;
        f64::from_le_bytes(b)
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let data: Arc<[u8]> = Arc::from(v.into_boxed_slice());
        Bytes {
            start: 0,
            end: data.len(),
            data,
        }
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Self {
        Bytes::from(s.into_bytes())
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(s: &'static [u8]) -> Self {
        Bytes::copy_from_slice(s)
    }
}

impl From<&'static str> for Bytes {
    fn from(s: &'static str) -> Self {
        Bytes::copy_from_slice(s.as_bytes())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl<const N: usize> PartialEq<[u8; N]> for Bytes {
    fn eq(&self, other: &[u8; N]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_slice() == *other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Ord for Bytes {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.as_slice().cmp(other.as_slice())
    }
}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<I: IntoIterator<Item = u8>>(iter: I) -> Self {
        Bytes::from(iter.into_iter().collect::<Vec<u8>>())
    }
}

/// A growable byte buffer that freezes into [`Bytes`].
#[derive(Debug, Default, Clone)]
pub struct BytesMut {
    buf: Vec<u8>,
}

impl BytesMut {
    pub fn new() -> Self {
        BytesMut::default()
    }

    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            buf: Vec::with_capacity(cap),
        }
    }

    pub fn len(&self) -> usize {
        self.buf.len()
    }

    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    pub fn freeze(self) -> Bytes {
        Bytes::from(self.buf)
    }

    // ---- BufMut-style writes (append at the back) ----

    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    pub fn put_u32_le(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn put_f64_le(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn put_slice(&mut self, s: &[u8]) {
        self.buf.extend_from_slice(s);
    }

    pub fn extend_from_slice(&mut self, s: &[u8]) {
        self.buf.extend_from_slice(s);
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.buf
    }
}

/// Read-cursor marker trait. The vendored `Bytes` implements the cursor
/// methods inherently; this trait exists so `use bytes::Buf` still works.
pub trait Buf {}
impl Buf for Bytes {}

/// Write-cursor marker trait, mirror of [`Buf`] for `BytesMut`.
pub trait BufMut {}
impl BufMut for BytesMut {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_to_is_zero_copy_view() {
        let mut b = Bytes::from(vec![1, 2, 3, 4, 5]);
        let head = b.split_to(2);
        assert_eq!(head, [1, 2]);
        assert_eq!(b, [3, 4, 5]);
    }

    #[test]
    fn cursor_reads() {
        let mut m = BytesMut::new();
        m.put_u32_le(7);
        m.put_u8(9);
        m.put_f64_le(1.5);
        let mut b = m.freeze();
        assert_eq!(b.get_u32_le(), 7);
        assert_eq!(b.get_u8(), 9);
        assert_eq!(b.get_f64_le(), 1.5);
        assert!(b.is_empty());
    }

    #[test]
    fn equality_and_hash_by_content() {
        let a = Bytes::from_static(b"same");
        let b = Bytes::from(b"same".to_vec());
        assert_eq!(a, b);
        let mut c = Bytes::from(b"xxsame".to_vec());
        let _ = c.split_to(2);
        assert_eq!(a, c);
    }
}
