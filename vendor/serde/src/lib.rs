//! Offline vendored stand-in for `serde`.
//!
//! Instead of serde's visitor architecture, values convert to and from a
//! self-describing [`Content`] tree (the same idea as serde's private
//! `Content` buffering type). `serde_json` then renders/parses that tree.
//! This supports exactly what Gallery needs: `#[derive(Serialize,
//! Deserialize)]` on structs and enums with the `rename`, `default`,
//! `skip_serializing_if` and `untagged` attributes, externally-tagged
//! enum encoding, and JSON via the sibling `serde_json` stub.

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, HashMap};

/// Self-describing value tree — the data model every `Serialize` impl
/// produces and every `Deserialize` impl consumes.
#[derive(Debug, Clone, PartialEq)]
pub enum Content {
    Null,
    Bool(bool),
    I64(i64),
    U64(u64),
    F64(f64),
    Str(String),
    Seq(Vec<Content>),
    /// Key-ordered as produced; JSON objects preserve insertion order.
    Map(Vec<(String, Content)>),
}

impl Content {
    pub fn kind(&self) -> &'static str {
        match self {
            Content::Null => "null",
            Content::Bool(_) => "boolean",
            Content::I64(_) | Content::U64(_) | Content::F64(_) => "number",
            Content::Str(_) => "string",
            Content::Seq(_) => "sequence",
            Content::Map(_) => "map",
        }
    }
}

/// Deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError {
    message: String,
}

impl DeError {
    pub fn new(message: impl Into<String>) -> Self {
        DeError {
            message: message.into(),
        }
    }

    pub fn expected(what: &str, got: &Content, context: &str) -> Self {
        DeError::new(format!(
            "invalid type: expected {what}, found {} while deserializing {context}",
            got.kind()
        ))
    }

    pub fn missing_field(field: &str, context: &str) -> Self {
        DeError::new(format!("missing field `{field}` in {context}"))
    }

    pub fn unknown_variant(variant: &str, context: &str) -> Self {
        DeError::new(format!("unknown variant `{variant}` for {context}"))
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for DeError {}

/// Conversion into the [`Content`] data model.
pub trait Serialize {
    fn to_content(&self) -> Content;
}

/// Conversion out of the [`Content`] data model.
pub trait Deserialize: Sized {
    fn from_content(content: &Content) -> Result<Self, DeError>;
}

/// Map-key lookup helper used by derive-generated code.
#[doc(hidden)]
pub fn __find<'a>(map: &'a [(String, Content)], key: &str) -> Option<&'a Content> {
    map.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

impl Serialize for bool {
    fn to_content(&self) -> Content {
        Content::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::Bool(b) => Ok(*b),
            other => Err(DeError::expected("boolean", other, "bool")),
        }
    }
}

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content {
                Content::I64(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_content(content: &Content) -> Result<Self, DeError> {
                let v: i64 = match content {
                    Content::I64(v) => *v,
                    Content::U64(v) if *v <= i64::MAX as u64 => *v as i64,
                    other => return Err(DeError::expected("integer", other, stringify!($t))),
                };
                <$t>::try_from(v).map_err(|_| {
                    DeError::new(format!("integer {v} out of range for {}", stringify!($t)))
                })
            }
        }
    )*};
}
impl_signed!(i8, i16, i32, i64, isize);

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content {
                Content::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_content(content: &Content) -> Result<Self, DeError> {
                let v: u64 = match content {
                    Content::U64(v) => *v,
                    Content::I64(v) if *v >= 0 => *v as u64,
                    other => return Err(DeError::expected("unsigned integer", other, stringify!($t))),
                };
                <$t>::try_from(v).map_err(|_| {
                    DeError::new(format!("integer {v} out of range for {}", stringify!($t)))
                })
            }
        }
    )*};
}
impl_unsigned!(u8, u16, u32, u64, usize);

impl Serialize for f64 {
    fn to_content(&self) -> Content {
        Content::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::F64(v) => Ok(*v),
            Content::I64(v) => Ok(*v as f64),
            Content::U64(v) => Ok(*v as f64),
            other => Err(DeError::expected("number", other, "f64")),
        }
    }
}

impl Serialize for f32 {
    fn to_content(&self) -> Content {
        Content::F64(*self as f64)
    }
}

impl Deserialize for f32 {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        f64::from_content(content).map(|v| v as f32)
    }
}

impl Serialize for char {
    fn to_content(&self) -> Content {
        Content::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => Err(DeError::expected("single-char string", other, "char")),
        }
    }
}

impl Serialize for String {
    fn to_content(&self) -> Content {
        Content::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::Str(s) => Ok(s.clone()),
            other => Err(DeError::expected("string", other, "String")),
        }
    }
}

impl Serialize for str {
    fn to_content(&self) -> Content {
        Content::Str(self.to_string())
    }
}

impl Serialize for () {
    fn to_content(&self) -> Content {
        Content::Null
    }
}

impl Deserialize for () {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::Null => Ok(()),
            other => Err(DeError::expected("null", other, "()")),
        }
    }
}

// ---------------------------------------------------------------------------
// Composite impls
// ---------------------------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        T::from_content(content).map(Box::new)
    }
}

impl<T: Serialize + ?Sized> Serialize for std::sync::Arc<T> {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

impl<T: Deserialize> Deserialize for std::sync::Arc<T> {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        T::from_content(content).map(std::sync::Arc::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_content(&self) -> Content {
        match self {
            Some(v) => v.to_content(),
            None => Content::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::Null => Ok(None),
            other => T::from_content(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::Seq(items) => items.iter().map(T::from_content).collect(),
            other => Err(DeError::expected("sequence", other, "Vec")),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Deserialize + std::fmt::Debug, const N: usize> Deserialize for [T; N] {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        let items = Vec::<T>::from_content(content)?;
        let len = items.len();
        <[T; N]>::try_from(items)
            .map_err(|_| DeError::new(format!("expected array of length {N}, got {len}")))
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_content(&self) -> Content {
                Content::Seq(vec![$(self.$idx.to_content()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_content(content: &Content) -> Result<Self, DeError> {
                const ARITY: usize = 0 $(+ { let _ = $idx; 1 })+;
                match content {
                    Content::Seq(items) if items.len() == ARITY => {
                        Ok(($($name::from_content(&items[$idx])?,)+))
                    }
                    other => Err(DeError::expected("tuple sequence", other, "tuple")),
                }
            }
        }
    )*};
}
impl_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_content(&self) -> Content {
        Content::Map(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_content()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::Map(entries) => entries
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_content(v)?)))
                .collect(),
            other => Err(DeError::expected("map", other, "BTreeMap")),
        }
    }
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn to_content(&self) -> Content {
        // Deterministic key order so serialized output is stable.
        let mut entries: Vec<(&String, &V)> = self.iter().collect();
        entries.sort_by(|a, b| a.0.cmp(b.0));
        Content::Map(
            entries
                .into_iter()
                .map(|(k, v)| (k.clone(), v.to_content()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::Map(entries) => entries
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_content(v)?)))
                .collect(),
            other => Err(DeError::expected("map", other, "HashMap")),
        }
    }
}

impl Serialize for Content {
    fn to_content(&self) -> Content {
        self.clone()
    }
}

impl Deserialize for Content {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        Ok(content.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn option_null_roundtrip() {
        assert_eq!(Option::<i64>::from_content(&Content::Null).unwrap(), None);
        assert_eq!(
            Option::<i64>::from_content(&Content::I64(3)).unwrap(),
            Some(3)
        );
        assert_eq!(None::<i64>.to_content(), Content::Null);
    }

    #[test]
    fn numeric_coercions() {
        assert_eq!(f64::from_content(&Content::I64(5)).unwrap(), 5.0);
        assert_eq!(u32::from_content(&Content::I64(7)).unwrap(), 7);
        assert!(u32::from_content(&Content::I64(-1)).is_err());
        assert!(i8::from_content(&Content::I64(300)).is_err());
    }

    #[test]
    fn array_roundtrip() {
        let arr = [1u8, 2, 3];
        let c = arr.to_content();
        assert_eq!(<[u8; 3]>::from_content(&c).unwrap(), arr);
        assert!(<[u8; 4]>::from_content(&c).is_err());
    }

    #[test]
    fn tuple_roundtrip() {
        let t = ("k".to_string(), 9i64);
        let c = t.to_content();
        assert_eq!(<(String, i64)>::from_content(&c).unwrap(), t);
    }
}
