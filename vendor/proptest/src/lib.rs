//! Offline vendored stand-in for `proptest`.
//!
//! Implements the strategy vocabulary Gallery's property tests use —
//! ranges, tuples, `Just`, regex-subset string literals, `prop_map`,
//! `prop_recursive`, `prop_oneof!`, `collection::{vec, btree_set}`,
//! `any::<T>()`, `sample::Index` — plus the `proptest!` / `prop_assert*`
//! macros. Cases are sampled from a per-test deterministic RNG (seeded
//! from the test name), so every run exercises the same inputs. Failing
//! cases are reported with their `Debug` form; there is NO shrinking.
#![allow(clippy::type_complexity)]
#![allow(clippy::redundant_closure_call)]

pub mod strategy {
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::sync::Arc;

    /// A generator of values of `Self::Value`.
    ///
    /// `sample_raw` returns `None` when the candidate was rejected (e.g.
    /// by a filter); the runner retries with fresh randomness.
    pub trait Strategy: 'static {
        type Value: 'static;

        fn sample_raw(&self, rng: &mut TestRng) -> Option<Self::Value>;

        fn prop_map<U: 'static, F>(self, f: F) -> BoxedStrategy<U>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U + 'static,
        {
            let inner = self;
            BoxedStrategy::new(move |rng| inner.sample_raw(rng).map(&f))
        }

        fn prop_filter<F>(self, _whence: &'static str, f: F) -> BoxedStrategy<Self::Value>
        where
            Self: Sized,
            F: Fn(&Self::Value) -> bool + 'static,
        {
            let inner = self;
            BoxedStrategy::new(move |rng| inner.sample_raw(rng).filter(|v| f(v)))
        }

        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized,
        {
            let inner = self;
            BoxedStrategy::new(move |rng| inner.sample_raw(rng))
        }

        /// Close the strategy over itself up to `depth` levels of nesting.
        /// `desired_size`/`expected_branch_size` are accepted for API
        /// compatibility; depth alone bounds recursion here.
        fn prop_recursive<S2, F>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch_size: u32,
            f: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized,
            S2: Strategy<Value = Self::Value>,
            F: Fn(BoxedStrategy<Self::Value>) -> S2 + 'static,
        {
            let leaf = self.boxed();
            let mut current = leaf.clone();
            for _ in 0..depth {
                let deeper = f(current).boxed();
                let shallow = leaf.clone();
                // Mix in leaves at every level so sizes stay bounded.
                current = BoxedStrategy::new(move |rng| {
                    if rng.inner().gen_bool(0.6) {
                        deeper.sample_raw(rng)
                    } else {
                        shallow.sample_raw(rng)
                    }
                });
            }
            current
        }
    }

    /// Type-erased, cheaply clonable strategy.
    pub struct BoxedStrategy<V> {
        sampler: Arc<dyn Fn(&mut TestRng) -> Option<V>>,
    }

    impl<V> BoxedStrategy<V> {
        pub fn new(sampler: impl Fn(&mut TestRng) -> Option<V> + 'static) -> Self {
            BoxedStrategy {
                sampler: Arc::new(sampler),
            }
        }
    }

    impl<V> Clone for BoxedStrategy<V> {
        fn clone(&self) -> Self {
            BoxedStrategy {
                sampler: Arc::clone(&self.sampler),
            }
        }
    }

    impl<V: 'static> Strategy for BoxedStrategy<V> {
        type Value = V;
        fn sample_raw(&self, rng: &mut TestRng) -> Option<V> {
            (self.sampler)(rng)
        }
    }

    /// Always yields a clone of the given value.
    #[derive(Clone, Debug)]
    pub struct Just<T>(pub T);

    impl<T: Clone + 'static> Strategy for Just<T> {
        type Value = T;
        fn sample_raw(&self, _rng: &mut TestRng) -> Option<T> {
            Some(self.0.clone())
        }
    }

    /// Uniform choice between boxed alternatives (`prop_oneof!`).
    pub struct Union<V> {
        options: Vec<BoxedStrategy<V>>,
    }

    impl<V> Union<V> {
        pub fn new(options: Vec<BoxedStrategy<V>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            Union { options }
        }
    }

    impl<V: 'static> Strategy for Union<V> {
        type Value = V;
        fn sample_raw(&self, rng: &mut TestRng) -> Option<V> {
            let idx = rng.inner().gen_range(0..self.options.len());
            self.options[idx].sample_raw(rng)
        }
    }

    // -- ranges ----------------------------------------------------------

    macro_rules! range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn sample_raw(&self, rng: &mut TestRng) -> Option<$t> {
                    Some(rng.inner().gen_range(self.clone()))
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn sample_raw(&self, rng: &mut TestRng) -> Option<$t> {
                    Some(rng.inner().gen_range(self.clone()))
                }
            }
        )*};
    }
    range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for std::ops::Range<f64> {
        type Value = f64;
        fn sample_raw(&self, rng: &mut TestRng) -> Option<f64> {
            Some(rng.inner().gen_range(self.clone()))
        }
    }

    impl Strategy for std::ops::Range<f32> {
        type Value = f32;
        fn sample_raw(&self, rng: &mut TestRng) -> Option<f32> {
            Some(rng.inner().gen_range(self.clone()))
        }
    }

    // -- tuples ----------------------------------------------------------

    macro_rules! tuple_strategy {
        ($(($($name:ident : $idx:tt),+))*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn sample_raw(&self, rng: &mut TestRng) -> Option<Self::Value> {
                    Some(($(self.$idx.sample_raw(rng)?,)+))
                }
            }
        )*};
    }
    tuple_strategy! {
        (A: 0)
        (A: 0, B: 1)
        (A: 0, B: 1, C: 2)
        (A: 0, B: 1, C: 2, D: 3)
        (A: 0, B: 1, C: 2, D: 3, E: 4)
        (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
    }

    // -- regex-subset string strategies ----------------------------------

    /// `&'static str` patterns generate matching strings. Supported
    /// subset: literal chars, `[a-z0-9_]`-style classes (ranges + single
    /// chars, no negation), and `{n}` / `{m,n}` repetition.
    impl Strategy for &'static str {
        type Value = String;
        fn sample_raw(&self, rng: &mut TestRng) -> Option<String> {
            Some(sample_pattern(self, rng))
        }
    }

    fn sample_pattern(pattern: &str, rng: &mut TestRng) -> String {
        let chars: Vec<char> = pattern.chars().collect();
        let mut out = String::new();
        let mut i = 0;
        while i < chars.len() {
            // one atom: a class or a literal char
            let alphabet: Vec<char> = match chars[i] {
                '[' => {
                    let close = chars[i..]
                        .iter()
                        .position(|&c| c == ']')
                        .map(|p| i + p)
                        .unwrap_or_else(|| panic!("unclosed [ in pattern {pattern:?}"));
                    let class = expand_class(&chars[i + 1..close], pattern);
                    i = close + 1;
                    class
                }
                '\\' => {
                    i += 1;
                    let c = chars[i];
                    i += 1;
                    vec![c]
                }
                c => {
                    i += 1;
                    vec![c]
                }
            };
            // optional repetition
            let (min, max) = if i < chars.len() && chars[i] == '{' {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == '}')
                    .map(|p| i + p)
                    .unwrap_or_else(|| panic!("unclosed {{ in pattern {pattern:?}"));
                let spec: String = chars[i + 1..close].iter().collect();
                i = close + 1;
                match spec.split_once(',') {
                    Some((lo, hi)) => (
                        lo.trim().parse::<usize>().expect("repeat lower bound"),
                        hi.trim().parse::<usize>().expect("repeat upper bound"),
                    ),
                    None => {
                        let n = spec.trim().parse::<usize>().expect("repeat count");
                        (n, n)
                    }
                }
            } else {
                (1, 1)
            };
            let count = rng.inner().gen_range(min..=max);
            for _ in 0..count {
                let pick = rng.inner().gen_range(0..alphabet.len());
                out.push(alphabet[pick]);
            }
        }
        out
    }

    fn expand_class(spec: &[char], pattern: &str) -> Vec<char> {
        let mut chars = Vec::new();
        let mut i = 0;
        while i < spec.len() {
            if i + 2 < spec.len() && spec[i + 1] == '-' {
                let (lo, hi) = (spec[i], spec[i + 2]);
                assert!(lo <= hi, "bad range in pattern {pattern:?}");
                for c in lo..=hi {
                    chars.push(c);
                }
                i += 3;
            } else {
                chars.push(spec[i]);
                i += 1;
            }
        }
        assert!(!chars.is_empty(), "empty class in pattern {pattern:?}");
        chars
    }
}

pub mod arbitrary {
    use crate::strategy::BoxedStrategy;
    use rand::Rng;

    /// Types with a canonical strategy (`any::<T>()`).
    pub trait Arbitrary: Sized + 'static {
        fn arbitrary_strategy() -> BoxedStrategy<Self>;
    }

    pub fn any<T: Arbitrary>() -> BoxedStrategy<T> {
        T::arbitrary_strategy()
    }

    impl Arbitrary for bool {
        fn arbitrary_strategy() -> BoxedStrategy<bool> {
            BoxedStrategy::new(|rng| Some(rng.inner().gen_bool(0.5)))
        }
    }

    macro_rules! arb_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary_strategy() -> BoxedStrategy<$t> {
                    BoxedStrategy::new(|rng| Some(rng.inner().gen::<$t>()))
                }
            }
        )*};
    }
    arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for f64 {
        /// Finite floats with a mix of magnitudes (no NaN/∞ — the tests
        /// compare values structurally).
        fn arbitrary_strategy() -> BoxedStrategy<f64> {
            BoxedStrategy::new(|rng| {
                let magnitude: f64 = [0.0, 1.0, 1e3, 1e9][rng.inner().gen_range(0..4usize)];
                let base: f64 = rng.inner().gen_range(-1.0..1.0);
                Some(base * magnitude.max(1.0) + if magnitude == 0.0 { 0.0 } else { base })
            })
        }
    }

    impl Arbitrary for f32 {
        fn arbitrary_strategy() -> BoxedStrategy<f32> {
            BoxedStrategy::new(|rng| Some(rng.inner().gen_range(-1e6f32..1e6)))
        }
    }

    impl Arbitrary for char {
        fn arbitrary_strategy() -> BoxedStrategy<char> {
            BoxedStrategy::new(|rng| {
                let c = rng.inner().gen_range(0x20u32..0x7F);
                Some(char::from_u32(c).unwrap())
            })
        }
    }

    impl Arbitrary for crate::sample::Index {
        fn arbitrary_strategy() -> BoxedStrategy<crate::sample::Index> {
            BoxedStrategy::new(|rng| Some(crate::sample::Index(rng.inner().gen::<usize>())))
        }
    }
}

pub mod sample {
    /// A position into a collection of as-yet-unknown length.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct Index(pub(crate) usize);

    impl Index {
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "Index::index on empty collection");
            self.0 % len
        }
    }
}

pub mod collection {
    use crate::strategy::{BoxedStrategy, Strategy};
    use rand::Rng;
    use std::collections::BTreeSet;
    use std::ops::Range;

    /// `Vec` of `size.start..size.end` elements.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> BoxedStrategy<Vec<S::Value>> {
        BoxedStrategy::new(move |rng| {
            let n = rng.inner().gen_range(size.clone());
            let mut out = Vec::with_capacity(n);
            for _ in 0..n {
                out.push(element.sample_raw(rng)?);
            }
            Some(out)
        })
    }

    /// `BTreeSet` targeting `size.start..size.end` distinct elements
    /// (duplicates are resampled a bounded number of times).
    pub fn btree_set<S>(element: S, size: Range<usize>) -> BoxedStrategy<BTreeSet<S::Value>>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BoxedStrategy::new(move |rng| {
            let target = rng.inner().gen_range(size.clone());
            let mut out = BTreeSet::new();
            let mut attempts = 0;
            while out.len() < target && attempts < target * 20 + 20 {
                if let Some(v) = element.sample_raw(rng) {
                    out.insert(v);
                }
                attempts += 1;
            }
            (out.len() >= size.start).then_some(out)
        })
    }
}

pub mod test_runner {
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Deterministic per-test RNG (seeded from the test name).
    pub struct TestRng(StdRng);

    impl TestRng {
        pub fn for_test(name: &str) -> Self {
            // FNV-1a over the test name: stable across runs and builds.
            let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                hash ^= b as u64;
                hash = hash.wrapping_mul(0x100_0000_01b3);
            }
            TestRng(StdRng::seed_from_u64(hash))
        }

        #[doc(hidden)]
        pub fn inner(&mut self) -> &mut StdRng {
            &mut self.0
        }
    }

    /// Outcome of one generated test case.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// `prop_assume!` failed — retry with a fresh sample.
        Reject(String),
        /// `prop_assert*!` failed — the test fails.
        Fail(String),
    }

    /// Runner configuration (`#![proptest_config(...)]`).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        pub cases: u32,
        /// Abort after this many rejections (filters/assumes) without
        /// completing a case.
        pub max_global_rejects: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig {
                cases,
                ..Default::default()
            }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig {
                cases: 64,
                max_global_rejects: 65536,
            }
        }
    }
}

pub mod prelude {
    pub use crate as prop;
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ @config($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ @config(<$crate::test_runner::ProptestConfig as ::std::default::Default>::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (@config($config:expr)
     $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),* $(,)?) $body:block
     )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config = $config;
                let mut __rng = $crate::test_runner::TestRng::for_test(stringify!($name));
                let __strategy = ($($strat,)*);
                let mut __done: u32 = 0;
                let mut __rejected: u32 = 0;
                while __done < __config.cases {
                    let ($($arg,)*) = match $crate::strategy::Strategy::sample_raw(&__strategy, &mut __rng) {
                        ::std::option::Option::Some(v) => v,
                        ::std::option::Option::None => {
                            __rejected += 1;
                            assert!(
                                __rejected < __config.max_global_rejects,
                                "proptest: too many strategy rejections in {}",
                                stringify!($name)
                            );
                            continue;
                        }
                    };
                    let __outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| { $body; ::std::result::Result::Ok(()) })();
                    match __outcome {
                        ::std::result::Result::Ok(()) => {
                            __done += 1;
                        }
                        ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(_)) => {
                            __rejected += 1;
                            assert!(
                                __rejected < __config.max_global_rejects,
                                "proptest: too many prop_assume rejections in {}",
                                stringify!($name)
                            );
                        }
                        ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(__msg)) => {
                            panic!(
                                "proptest case {}/{} of {} failed: {}",
                                __done + 1,
                                __config.cases,
                                stringify!($name),
                                __msg
                            );
                        }
                    }
                }
            }
        )*
    };
}

#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                concat!("assertion failed: ", stringify!($cond)).to_string(),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!($($fmt)+),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!("assertion failed: `{:?}` == `{:?}`", __l, __r),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!(
                    "assertion failed: `{:?}` == `{:?}`: {}",
                    __l,
                    __r,
                    format!($($fmt)+)
                ),
            ));
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if *__l == *__r {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(format!(
                "assertion failed: `{:?}` != `{:?}`",
                __l, __r
            )));
        }
    }};
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                concat!("assumption failed: ", stringify!($cond)).to_string(),
            ));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_in_bounds(x in -5i64..5, y in 0u8..3) {
            prop_assert!((-5..5).contains(&x));
            prop_assert!(y < 3);
        }

        #[test]
        fn regex_subset_shapes(s in "[a-z][a-z0-9_]{0,8}") {
            prop_assert!(!s.is_empty() && s.len() <= 9, "bad sample {:?}", s);
            prop_assert!(s.chars().next().unwrap().is_ascii_lowercase());
        }

        #[test]
        fn vec_sizes(v in crate::collection::vec((0i64..10, 0u8..2), 0..7)) {
            prop_assert!(v.len() < 7);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        #[test]
        fn config_applies(x in 0u32..10) {
            let _ = x;
        }
    }

    #[test]
    fn determinism_same_name_same_samples() {
        use crate::strategy::Strategy;
        let strat = (0u64..1000, "[a-z]{3}");
        let mut a = TestRng::for_test("fixed");
        let mut b = TestRng::for_test("fixed");
        for _ in 0..50 {
            assert_eq!(strat.sample_raw(&mut a), strat.sample_raw(&mut b));
        }
    }

    #[test]
    fn oneof_and_recursive_produce_values() {
        use crate::strategy::Strategy;
        #[derive(Debug, Clone, PartialEq)]
        enum T {
            Leaf(u8),
            Node(Box<T>, Box<T>),
        }
        let leaf = prop_oneof![(0u8..10).prop_map(T::Leaf), Just(T::Leaf(99))];
        let tree = leaf.prop_recursive(3, 16, 2, |inner| {
            (inner.clone(), inner).prop_map(|(l, r)| T::Node(Box::new(l), Box::new(r)))
        });
        let mut rng = TestRng::for_test("tree");
        let mut saw_node = false;
        for _ in 0..64 {
            if matches!(tree.sample_raw(&mut rng), Some(T::Node(_, _))) {
                saw_node = true;
            }
        }
        assert!(saw_node);
    }

    #[test]
    fn index_modulo() {
        let ix = crate::sample::Index(13);
        assert_eq!(ix.index(5), 3);
    }
}
