//! Offline vendored stand-in for `crossbeam`.
//!
//! Implements the one API surface Gallery uses: `crossbeam::channel`
//! unbounded multi-producer **multi-consumer** channels (std's `mpsc` is
//! single-consumer, so the server-replica pool needs a real MPMC queue).
//! Built on a `Mutex<VecDeque>` + `Condvar`; disconnection semantics match
//! the real crate: `send` fails when all receivers are gone, `recv` fails
//! when the queue is drained and all senders are gone.

pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex};

    struct Shared<T> {
        queue: Mutex<VecDeque<T>>,
        ready: Condvar,
        senders: AtomicUsize,
        receivers: AtomicUsize,
    }

    /// Error returned by [`Sender::send`] when every receiver has hung up.
    /// Carries the rejected message, like the real crate.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// every sender has hung up.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("receiving on an empty and disconnected channel")
        }
    }

    impl std::error::Error for RecvError {}

    /// The sending half of an unbounded channel. Clonable (MPMC).
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// The receiving half of an unbounded channel. Clonable (MPMC).
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    impl<T> fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Sender { .. }")
        }
    }

    impl<T> fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Receiver { .. }")
        }
    }

    /// Create an unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            senders: AtomicUsize::new(1),
            receivers: AtomicUsize::new(1),
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    impl<T> Sender<T> {
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            if self.shared.receivers.load(Ordering::Acquire) == 0 {
                return Err(SendError(value));
            }
            let mut queue = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            queue.push_back(value);
            drop(queue);
            self.shared.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.senders.fetch_add(1, Ordering::AcqRel);
            Sender {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if self.shared.senders.fetch_sub(1, Ordering::AcqRel) == 1 {
                // Last sender gone: wake all blocked receivers so they can
                // observe disconnection.
                self.shared.ready.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Block until a message arrives or all senders disconnect.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut queue = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(value) = queue.pop_front() {
                    return Ok(value);
                }
                if self.shared.senders.load(Ordering::Acquire) == 0 {
                    return Err(RecvError);
                }
                queue = self
                    .shared
                    .ready
                    .wait(queue)
                    .unwrap_or_else(|e| e.into_inner());
            }
        }

        /// Non-blocking receive: `None` when currently empty.
        pub fn try_recv(&self) -> Option<T> {
            self.shared
                .queue
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .pop_front()
        }

        pub fn len(&self) -> usize {
            self.shared
                .queue
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .len()
        }

        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared.receivers.fetch_add(1, Ordering::AcqRel);
            Receiver {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.shared.receivers.fetch_sub(1, Ordering::AcqRel);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel::*;

    #[test]
    fn multi_consumer_each_message_delivered_once() {
        let (tx, rx) = unbounded::<u32>();
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let rx = rx.clone();
                std::thread::spawn(move || {
                    let mut got = Vec::new();
                    while let Ok(v) = rx.recv() {
                        got.push(v);
                    }
                    got
                })
            })
            .collect();
        for i in 0..100 {
            tx.send(i).unwrap();
        }
        drop(tx);
        drop(rx);
        let mut all: Vec<u32> = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        all.sort_unstable();
        assert_eq!(all, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn recv_fails_after_senders_gone() {
        let (tx, rx) = unbounded::<u8>();
        tx.send(1).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Err(RecvError));
    }

    #[test]
    fn send_fails_after_receivers_gone() {
        let (tx, rx) = unbounded::<u8>();
        drop(rx);
        assert!(tx.send(1).is_err());
    }
}
