//! Offline vendored stand-in for `parking_lot`.
//!
//! Wraps `std::sync` locks with the `parking_lot` API shape: `lock()` /
//! `read()` / `write()` return guards directly (no poison `Result`). A
//! poisoned std lock is recovered transparently — Gallery's locked
//! sections never leave data structurally broken on panic, matching
//! `parking_lot`'s "no poisoning" stance.

use std::fmt;
use std::sync::{self, PoisonError};

pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

/// Mutual exclusion lock with `parking_lot` ergonomics.
#[derive(Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(guard) => f.debug_tuple("Mutex").field(&&*guard).finish(),
            None => f.write_str("Mutex(<locked>)"),
        }
    }
}

/// Reader-writer lock with `parking_lot` ergonomics.
#[derive(Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.0.try_read() {
            Ok(guard) => f.debug_tuple("RwLock").field(&&*guard).finish(),
            Err(sync::TryLockError::Poisoned(e)) => {
                f.debug_tuple("RwLock").field(&&*e.into_inner()).finish()
            }
            Err(sync::TryLockError::WouldBlock) => f.write_str("RwLock(<locked>)"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(*l.read(), vec![1, 2]);
    }

    #[test]
    fn lock_recovers_from_poison() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison it");
        })
        .join();
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }
}
