//! Offline vendored stand-in for `rand_distr` 0.4.
//!
//! Provides the two distributions Gallery's simulators use: [`Normal`]
//! (Box–Muller transform) and [`Poisson`] (Knuth's product method, with a
//! normal approximation for large means). Matches the 0.4 API shape:
//! `new` returns `Result`, `Poisson::sample` yields `f64`.
#![allow(clippy::neg_cmp_op_on_partial_ord)]

use rand::{Rng, RngCore};

/// Types that can generate samples of `T` given an RNG.
pub trait Distribution<T> {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// Parameter-validation error for distribution constructors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Error(&'static str);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.0)
    }
}

impl std::error::Error for Error {}

/// Normal (Gaussian) distribution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Normal {
    mean: f64,
    std_dev: f64,
}

impl Normal {
    pub fn new(mean: f64, std_dev: f64) -> Result<Self, Error> {
        if !std_dev.is_finite() || std_dev < 0.0 {
            return Err(Error("std_dev must be finite and non-negative"));
        }
        if !mean.is_finite() {
            return Err(Error("mean must be finite"));
        }
        Ok(Normal { mean, std_dev })
    }

    pub fn mean(&self) -> f64 {
        self.mean
    }

    pub fn std_dev(&self) -> f64 {
        self.std_dev
    }
}

impl Distribution<f64> for Normal {
    fn sample<R: RngCore + ?Sized>(&self, mut rng: &mut R) -> f64 {
        // Box–Muller: two uniforms -> one standard normal. u1 is nudged
        // away from 0 so ln() stays finite.
        let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        let u2: f64 = rng.gen_range(0.0..1.0);
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        self.mean + self.std_dev * z
    }
}

/// Poisson distribution with rate `lambda`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Poisson {
    lambda: f64,
}

impl Poisson {
    pub fn new(lambda: f64) -> Result<Self, Error> {
        if !(lambda > 0.0) || !lambda.is_finite() {
            return Err(Error("lambda must be finite and > 0"));
        }
        Ok(Poisson { lambda })
    }
}

impl Distribution<f64> for Poisson {
    fn sample<R: RngCore + ?Sized>(&self, mut rng: &mut R) -> f64 {
        if self.lambda < 30.0 {
            // Knuth: multiply uniforms until the product drops below
            // exp(-lambda).
            let limit = (-self.lambda).exp();
            let mut product: f64 = rng.gen_range(0.0..1.0);
            let mut count = 0u64;
            while product > limit {
                count += 1;
                product *= rng.gen_range(0.0f64..1.0);
            }
            count as f64
        } else {
            // Normal approximation, adequate for arrival-rate simulation.
            let normal = Normal::new(self.lambda, self.lambda.sqrt()).expect("valid");
            normal.sample(rng).round().max(0.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn normal_moments() {
        let mut rng = StdRng::seed_from_u64(1);
        let dist = Normal::new(5.0, 2.0).unwrap();
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| dist.sample(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 5.0).abs() < 0.1, "mean {mean}");
        assert!((var - 4.0).abs() < 0.2, "var {var}");
    }

    #[test]
    fn poisson_mean_small_lambda() {
        let mut rng = StdRng::seed_from_u64(2);
        let dist = Poisson::new(3.5).unwrap();
        let n = 20_000;
        let mean = (0..n).map(|_| dist.sample(&mut rng)).sum::<f64>() / n as f64;
        assert!((mean - 3.5).abs() < 0.1, "mean {mean}");
    }

    #[test]
    fn poisson_mean_large_lambda() {
        let mut rng = StdRng::seed_from_u64(3);
        let dist = Poisson::new(100.0).unwrap();
        let n = 5_000;
        let mean = (0..n).map(|_| dist.sample(&mut rng)).sum::<f64>() / n as f64;
        assert!((mean - 100.0).abs() < 1.0, "mean {mean}");
    }

    #[test]
    fn invalid_params_rejected() {
        assert!(Normal::new(0.0, -1.0).is_err());
        assert!(Poisson::new(0.0).is_err());
        assert!(Poisson::new(f64::NAN).is_err());
    }
}
