//! Offline vendored stand-in for `serde_json`.
//!
//! Renders and parses JSON through the sibling `serde` stub's `Content`
//! tree. Floats are written with Rust's shortest-roundtrip formatting
//! (so `2.0` stays `2.0` and parses back bit-identical — the
//! `float_roundtrip` feature is inherently on); non-finite floats are
//! rejected like the real crate.

use serde::{Content, Deserialize, Serialize};

/// Serialization or parse error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    message: String,
}

impl Error {
    fn new(message: impl Into<String>) -> Self {
        Error {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Self {
        Error::new(e.to_string())
    }
}

// ---------------------------------------------------------------------------
// Serialization
// ---------------------------------------------------------------------------

pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_content(&value.to_content(), &mut out, None, 0)?;
    Ok(out)
}

pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_content(&value.to_content(), &mut out, Some(2), 0)?;
    Ok(out)
}

pub fn to_vec<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>, Error> {
    to_string(value).map(String::into_bytes)
}

fn write_content(
    c: &Content,
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
) -> Result<(), Error> {
    match c {
        Content::Null => out.push_str("null"),
        Content::Bool(true) => out.push_str("true"),
        Content::Bool(false) => out.push_str("false"),
        Content::I64(v) => out.push_str(&v.to_string()),
        Content::U64(v) => out.push_str(&v.to_string()),
        Content::F64(v) => {
            if !v.is_finite() {
                return Err(Error::new("cannot serialize non-finite float as JSON"));
            }
            // `{:?}` is Rust's shortest-roundtrip float form and always
            // contains `.` or `e`, so it re-parses as a float.
            out.push_str(&format!("{v:?}"));
        }
        Content::Str(s) => write_json_string(s, out),
        Content::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_content(item, out, indent, depth + 1)?;
            }
            if !items.is_empty() {
                newline_indent(out, indent, depth);
            }
            out.push(']');
        }
        Content::Map(entries) => {
            out.push('{');
            for (i, (k, v)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_json_string(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_content(v, out, indent, depth + 1)?;
            }
            if !entries.is_empty() {
                newline_indent(out, indent, depth);
            }
            out.push('}');
        }
    }
    Ok(())
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_json_string(s: &str, out: &mut String) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Deserialization
// ---------------------------------------------------------------------------

pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let content = parse(s)?;
    Ok(T::from_content(&content)?)
}

pub fn from_slice<T: Deserialize>(bytes: &[u8]) -> Result<T, Error> {
    let s = std::str::from_utf8(bytes).map_err(|e| Error::new(format!("invalid UTF-8: {e}")))?;
    from_str(s)
}

fn parse(s: &str) -> Result<Content, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Result<u8, Error> {
        let b = self
            .peek()
            .ok_or_else(|| Error::new("unexpected end of input"))?;
        self.pos += 1;
        Ok(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        let got = self.bump()?;
        if got != b {
            return Err(Error::new(format!(
                "expected `{}`, found `{}` at byte {}",
                b as char,
                got as char,
                self.pos - 1
            )));
        }
        Ok(())
    }

    fn parse_value(&mut self) -> Result<Content, Error> {
        match self.peek() {
            Some(b'n') => self.parse_keyword("null", Content::Null),
            Some(b't') => self.parse_keyword("true", Content::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Content::Bool(false)),
            Some(b'"') => Ok(Content::Str(self.parse_string()?)),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            Some(other) => Err(Error::new(format!(
                "unexpected character `{}` at byte {}",
                other as char, self.pos
            ))),
            None => Err(Error::new("unexpected end of input")),
        }
    }

    fn parse_keyword(&mut self, word: &str, value: Content) -> Result<Content, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(Error::new(format!(
                "invalid literal at byte {}, expected `{word}`",
                self.pos
            )))
        }
    }

    fn parse_array(&mut self) -> Result<Content, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Content::Seq(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.bump()? {
                b',' => continue,
                b']' => return Ok(Content::Seq(items)),
                other => {
                    return Err(Error::new(format!(
                        "expected `,` or `]`, found `{}` at byte {}",
                        other as char,
                        self.pos - 1
                    )))
                }
            }
        }
    }

    fn parse_object(&mut self) -> Result<Content, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Content::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.bump()? {
                b',' => continue,
                b'}' => return Ok(Content::Map(entries)),
                other => {
                    return Err(Error::new(format!(
                        "expected `,` or `}}`, found `{}` at byte {}",
                        other as char,
                        self.pos - 1
                    )))
                }
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: run of plain bytes.
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            if self.pos > start {
                let chunk = std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|e| Error::new(format!("invalid UTF-8 in string: {e}")))?;
                out.push_str(chunk);
            }
            match self.bump()? {
                b'"' => return Ok(out),
                b'\\' => match self.bump()? {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'b' => out.push('\u{08}'),
                    b'f' => out.push('\u{0C}'),
                    b'u' => {
                        let hi = self.parse_hex4()?;
                        let code = if (0xD800..0xDC00).contains(&hi) {
                            // Surrogate pair: require the low half.
                            self.expect(b'\\')?;
                            self.expect(b'u')?;
                            let lo = self.parse_hex4()?;
                            if !(0xDC00..0xE000).contains(&lo) {
                                return Err(Error::new("unpaired surrogate in \\u escape"));
                            }
                            0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                        } else {
                            hi
                        };
                        out.push(
                            char::from_u32(code).ok_or_else(|| Error::new("invalid \\u escape"))?,
                        );
                    }
                    other => {
                        return Err(Error::new(format!("invalid escape `\\{}`", other as char)))
                    }
                },
                other => {
                    return Err(Error::new(format!(
                        "unescaped control character 0x{other:02x} in string"
                    )))
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        let mut value = 0u32;
        for _ in 0..4 {
            let b = self.bump()?;
            let digit = (b as char)
                .to_digit(16)
                .ok_or_else(|| Error::new("invalid hex digit in \\u escape"))?;
            value = value * 16 + digit;
        }
        Ok(value)
    }

    fn parse_number(&mut self) -> Result<Content, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number bytes are ASCII");
        if is_float {
            text.parse::<f64>()
                .map(Content::F64)
                .map_err(|_| Error::new(format!("invalid number `{text}`")))
        } else if let Ok(v) = text.parse::<i64>() {
            Ok(Content::I64(v))
        } else if let Ok(v) = text.parse::<u64>() {
            Ok(Content::U64(v))
        } else {
            text.parse::<f64>()
                .map(Content::F64)
                .map_err(|_| Error::new(format!("invalid number `{text}`")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    #[test]
    fn scalar_roundtrips() {
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string(&42i64).unwrap(), "42");
        assert_eq!(to_string(&2.0f64).unwrap(), "2.0");
        assert_eq!(to_string(&0.1f64).unwrap(), "0.1");
        assert_eq!(from_str::<f64>("2.0").unwrap(), 2.0);
        assert_eq!(from_str::<f64>("7").unwrap(), 7.0);
        assert_eq!(from_str::<i64>("-3").unwrap(), -3);
        assert_eq!(from_str::<String>("\"a\\nb\"").unwrap(), "a\nb");
    }

    #[test]
    fn map_roundtrip_preserves_values() {
        let mut m = BTreeMap::new();
        m.insert("alpha".to_string(), 1.5f64);
        m.insert("beta".to_string(), -2.0);
        let json = to_string(&m).unwrap();
        let back: BTreeMap<String, f64> = from_str(&json).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn nested_pretty_parses_back() {
        let v: Vec<Vec<u32>> = vec![vec![1, 2], vec![], vec![3]];
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains('\n'));
        let back: Vec<Vec<u32>> = from_str(&pretty).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn unicode_escapes() {
        assert_eq!(from_str::<String>("\"\\u0041\"").unwrap(), "A");
        assert_eq!(from_str::<String>("\"\\ud83d\\ude00\"").unwrap(), "😀");
        assert!(from_str::<String>("\"\\ud800\"").is_err());
    }

    #[test]
    fn errors_reported() {
        assert!(from_str::<bool>("troo").is_err());
        assert!(from_str::<Vec<u8>>("[1, 2").is_err());
        assert!(from_str::<u8>("1 junk").is_err());
        assert!(to_string(&f64::NAN).is_err());
    }
}
