//! Figure 1 end-to-end: a model's full lifecycle driven by real
//! components across crates — training (gallery-forecast), evaluation and
//! deployment (gallery-core), monitoring with drift detection
//! (gallery-core::health), retraining triggered through the rule engine
//! (gallery-rules), and deprecation of the old instance.

use bytes::Bytes;
use gallery_core::health::drift::WindowMeanShift;
use gallery_core::metadata::fields;
use gallery_core::{Gallery, InstanceSpec, Metadata, MetricScope, MetricSpec, ModelSpec, Stage};
use gallery_forecast::{
    backtest, AnyForecaster, CityConfig, EventWindow, FeatureSpec, Forecaster, RidgeForecaster,
};
use gallery_rules::{ActionRegistry, CompiledRule, RuleBody, RuleDoc, RuleEngine};
use parking_lot::Mutex;
use std::sync::Arc;

#[test]
fn full_lifecycle_with_drift_and_retraining() {
    let gallery = Arc::new(Gallery::in_memory());

    // --- Exploration → Training -----------------------------------------
    let city = CityConfig::new("lifecycle_city", 99);
    let day = city.samples_per_day();
    // Weeks 1-4 stationary; a persistent demand regime change (e.g. a new
    // transit line) begins at week 5 — that's the drift.
    let drifted_city = city.clone().with_event(EventWindow {
        start: day * 28,
        end: day * 42,
        multiplier: 1.6,
    });
    let series = drifted_city.generate(day * 42, 0);

    let model = gallery
        .create_model(
            ModelSpec::new("marketplace", "demand_lifecycle")
                .name("ridge")
                .owner("forecasting"),
        )
        .unwrap();

    // Day-scale lags: the model forecasts from the daily pattern, so a
    // persistent regime change genuinely degrades it (short lags would
    // adapt within one step and mask the drift).
    let day_spec = FeatureSpec {
        lags: vec![day, 2 * day],
        samples_per_day: day,
        weekly: true,
        event_flag: false,
    };
    let (train, _) = series.split_at(day * 21);
    let mut forecaster = AnyForecaster::Ridge(RidgeForecaster::new(day_spec.clone(), 1.0));
    forecaster.fit(&train).unwrap();
    let v1 = gallery
        .upload_instance(
            &model.id,
            InstanceSpec::new().metadata(
                Metadata::new()
                    .with(fields::MODEL_NAME, "ridge")
                    .with(fields::CITY, city.name.clone()),
            ),
            Bytes::from(forecaster.to_blob()),
        )
        .unwrap();
    assert_eq!(gallery.stage_of(&v1.id).unwrap(), Stage::Trained);

    // --- Evaluation → Deployment ----------------------------------------
    // Validation window = week 4, still pre-drift.
    let eval = {
        let (head, _) = series.split_at(day * 28);
        backtest(&forecaster, &head, day * 21)
    };
    gallery
        .insert_metric_blob(
            &v1.id,
            MetricScope::Validation,
            &gallery_core::metrics::format_metric_blob(&eval.to_pairs()),
        )
        .unwrap();
    assert!(
        eval.mape < 0.2,
        "initial model is deployable: {}",
        eval.mape
    );
    gallery.set_stage(&v1.id, Stage::Evaluated).unwrap();
    gallery.deploy(&model.id, &v1.id, "production").unwrap();
    gallery.set_stage(&v1.id, Stage::Deployed).unwrap();
    gallery.set_stage(&v1.id, Stage::Monitoring).unwrap();

    // --- Monitoring: a retraining rule watches production MAPE ----------
    let retrain_requests: Arc<Mutex<Vec<String>>> = Arc::default();
    let actions = ActionRegistry::new();
    {
        let retrain_requests = Arc::clone(&retrain_requests);
        actions.register("trigger_retraining", move |inv| {
            retrain_requests.lock().push(inv.instance_id.to_string());
            Ok(())
        });
    }
    let engine = RuleEngine::new(Arc::clone(&gallery), actions, 1);
    engine.register(
        CompiledRule::compile(&RuleDoc {
            team: "forecasting".into(),
            uuid: "retrain-on-degradation".into(),
            rule: RuleBody {
                given: r#"model_name == "ridge""#.into(),
                when: "metrics.production_mape > 0.18".into(),
                environment: "production".into(),
                model_selection: None,
                callback_actions: vec!["trigger_retraining".into()],
            },
        })
        .unwrap(),
    );
    engine.attach();

    // Production monitoring: daily MAPE readings flow into Gallery and a
    // drift detector. Weeks 4-6: regime change degrades the served model.
    let mut detector = WindowMeanShift::new(7, 4.0);
    let mut drift_seen = false;
    for week_day in 0..21 {
        let t0 = day * (21 + week_day);
        let window_eval = {
            // daily production MAPE of the *deployed* model
            let served =
                AnyForecaster::from_blob(&gallery.fetch_instance_blob(&v1.id).unwrap()).unwrap();
            let (head, _) = series.split_at(t0 + day);
            backtest(&served, &head, t0)
        };
        gallery
            .insert_metric(
                &v1.id,
                MetricSpec::new("production_mape", MetricScope::Production, window_eval.mape),
            )
            .unwrap();
        detector.observe(window_eval.mape);
        if detector.check().drifted {
            drift_seen = true;
        }
    }
    engine.drain();
    assert!(drift_seen, "the regime change must register as drift");
    assert!(
        !retrain_requests.lock().is_empty(),
        "degraded production MAPE must trigger the retraining rule"
    );

    // --- Retraining: new instance on fresh data -------------------------
    gallery.set_stage(&v1.id, Stage::Retraining).unwrap();
    let (fresh_train, _) = series.split_at(day * 35);
    let mut retrained = AnyForecaster::Ridge(RidgeForecaster::new(day_spec, 1.0));
    retrained.fit(&fresh_train).unwrap();
    let v2 = gallery
        .upload_instance(
            &model.id,
            InstanceSpec::new().metadata(
                Metadata::new()
                    .with(fields::MODEL_NAME, "ridge")
                    .with(fields::CITY, city.name.clone()),
            ),
            Bytes::from(retrained.to_blob()),
        )
        .unwrap();
    assert_eq!(v2.display_version.to_string(), "1.1");

    // Retrained model beats the stale one on the drifted window.
    let stale_eval = backtest(&forecaster, &series, day * 35);
    let fresh_eval = backtest(&retrained, &series, day * 35);
    assert!(
        fresh_eval.mape < stale_eval.mape,
        "retrained {} must beat stale {}",
        fresh_eval.mape,
        stale_eval.mape
    );

    // --- Deploy v2, deprecate v1 ----------------------------------------
    gallery.set_stage(&v2.id, Stage::Evaluated).unwrap();
    gallery.deploy(&model.id, &v2.id, "production").unwrap();
    gallery.set_stage(&v2.id, Stage::Deployed).unwrap();
    gallery.set_stage(&v1.id, Stage::Deprecated).unwrap();

    assert_eq!(
        gallery.deployed_instance(&model.id, "production").unwrap(),
        Some(v2.id.clone())
    );
    assert!(gallery.get_instance(&v1.id).unwrap().deprecated);
    // deprecated instance hidden from search but still fetchable (§3.7)
    let live = gallery
        .find_instances(
            &gallery_store::Query::all()
                .and(gallery_store::Constraint::eq("model_id", model.id.as_str())),
        )
        .unwrap();
    assert_eq!(live.len(), 1);
    assert!(gallery.fetch_instance_blob(&v1.id).is_ok());

    // Lifecycle history of v1 covers the Figure 1 loop.
    let history: Vec<Stage> = gallery
        .stage_history(&v1.id)
        .unwrap()
        .into_iter()
        .map(|(s, _)| s)
        .collect();
    assert_eq!(
        history,
        vec![
            Stage::Evaluated,
            Stage::Deployed,
            Stage::Monitoring,
            Stage::Retraining,
            Stage::Deprecated
        ]
    );
}
