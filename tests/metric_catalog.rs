//! The metric catalog (docs/metrics.md) is enforced, not aspirational:
//! every `gallery_*` family name that appears as a string literal in the
//! source tree must be documented, and every documented family must
//! still exist in code. Either direction failing breaks CI, so the
//! catalog cannot rot.

use std::collections::BTreeSet;
use std::fs;
use std::path::{Path, PathBuf};

fn repo_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
}

fn rust_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            // Criterion benchmark IDs under benches/ reuse the gallery_
            // prefix for chart names; they are not metric families.
            if path.file_name().is_some_and(|n| n == "benches") {
                continue;
            }
            rust_files(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

/// Extract `gallery_*` identifiers that appear right after `needle` in
/// `text` (for sources: a quote; for docs: a backtick).
fn extract_names(text: &str, needle: &str) -> BTreeSet<String> {
    let mut names = BTreeSet::new();
    let mut rest = text;
    while let Some(pos) = rest.find(needle) {
        rest = &rest[pos + needle.len()..];
        let name: String = format!(
            "gallery_{}",
            rest.chars()
                .take_while(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || *c == '_')
                .collect::<String>()
        );
        // Trailing-underscore tokens are prefix filters / globs
        // (e.g. the CLI's family filter), not family names.
        if !name.ends_with('_') {
            names.insert(name);
        }
    }
    names
}

/// Exposition-series suffixes implied by a histogram family.
const SERIES_SUFFIXES: [&str; 3] = ["_bucket", "_sum", "_count"];

fn base_name(name: &str) -> &str {
    for suffix in SERIES_SUFFIXES {
        if let Some(stripped) = name.strip_suffix(suffix) {
            return stripped;
        }
    }
    name
}

#[test]
fn every_metric_family_is_documented_and_every_documented_family_exists() {
    let root = repo_root();
    // Split the quote off the prefix so this very file's literals don't
    // register as an (undocumentable) family named "gallery_".
    let quoted = format!("{}gallery_", '"');

    let mut files = Vec::new();
    rust_files(&root.join("crates"), &mut files);
    rust_files(&root.join("src"), &mut files);
    rust_files(&root.join("tests"), &mut files);
    assert!(
        files.len() > 50,
        "suspiciously few Rust files found: {}",
        files.len()
    );

    let mut code_names = BTreeSet::new();
    for file in &files {
        let text = fs::read_to_string(file).unwrap();
        code_names.extend(extract_names(&text, &quoted));
    }
    assert!(
        code_names.len() > 30,
        "suspiciously few metric literals found: {code_names:?}"
    );

    let docs = fs::read_to_string(root.join("docs/metrics.md")).unwrap();
    let doc_names = extract_names(&docs, "`gallery_");

    let undocumented: Vec<&String> = code_names
        .iter()
        .filter(|n| !doc_names.contains(*n) && !doc_names.contains(base_name(n)))
        .collect();
    assert!(
        undocumented.is_empty(),
        "metric families minted in code but missing from docs/metrics.md: {undocumented:?}"
    );

    let stale: Vec<&String> = doc_names
        .iter()
        .filter(|n| !code_names.contains(*n))
        .collect();
    assert!(
        stale.is_empty(),
        "families documented in docs/metrics.md but absent from the source tree: {stale:?}"
    );
}
