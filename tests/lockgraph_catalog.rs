//! The lock-diagnostics catalog (docs/concurrency.md) is enforced, not
//! aspirational: every code in `gallery_sync::codes::ALL` must be
//! documented in the catalog table AND pinned by a fixture in
//! `crates/gallery-sync/tests/lockgraph_fixtures.rs`, and every `GLnnnn`
//! code mentioned in the docs or fixture corpus must still exist in
//! code. Either direction failing breaks CI, so the catalog cannot rot.

use std::collections::BTreeSet;
use std::fs;
use std::path::PathBuf;

use gallery::core::sync::codes;

fn repo_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
}

/// Extract every `GLnnnn` token from `text`.
fn extract_codes(text: &str) -> BTreeSet<String> {
    let bytes = text.as_bytes();
    let mut out = BTreeSet::new();
    for i in 0..bytes.len().saturating_sub(5) {
        if bytes[i] == b'G'
            && bytes[i + 1] == b'L'
            && bytes[i + 2..i + 6].iter().all(u8::is_ascii_digit)
            // Reject longer digit runs (e.g. "GL00011" is not a code).
            && bytes.get(i + 6).is_none_or(|b| !b.is_ascii_digit())
        {
            out.insert(String::from_utf8_lossy(&bytes[i..i + 6]).into_owned());
        }
    }
    out
}

#[test]
fn every_lock_code_is_documented_and_every_documented_code_exists() {
    let root = repo_root();
    let docs = fs::read_to_string(root.join("docs/concurrency.md")).unwrap();
    let doc_codes = extract_codes(&docs);

    let known: BTreeSet<String> = codes::ALL.iter().map(|c| c.to_string()).collect();
    assert!(known.len() >= 5, "suspiciously few codes: {known:?}");

    let undocumented: Vec<&String> = known.iter().filter(|c| !doc_codes.contains(*c)).collect();
    assert!(
        undocumented.is_empty(),
        "lock diagnostic codes missing from docs/concurrency.md: {undocumented:?}"
    );

    let stale: Vec<&String> = doc_codes.iter().filter(|c| !known.contains(*c)).collect();
    assert!(
        stale.is_empty(),
        "codes documented in docs/concurrency.md but absent from codes::ALL: {stale:?}"
    );
}

#[test]
fn every_lock_code_is_pinned_by_a_lockgraph_fixture() {
    let root = repo_root();
    let fixtures =
        fs::read_to_string(root.join("crates/gallery-sync/tests/lockgraph_fixtures.rs")).unwrap();
    let fixture_codes = extract_codes(&fixtures);

    let unpinned: Vec<&&str> = codes::ALL
        .iter()
        .filter(|c| !fixture_codes.contains(**c))
        .collect();
    assert!(
        unpinned.is_empty(),
        "lock diagnostic codes without a fixture in lockgraph_fixtures.rs: {unpinned:?}"
    );

    let stale: Vec<&String> = fixture_codes
        .iter()
        .filter(|c| !codes::ALL.contains(&c.as_str()))
        .collect();
    assert!(
        stale.is_empty(),
        "codes referenced in lockgraph_fixtures.rs but absent from codes::ALL: {stale:?}"
    );
}
