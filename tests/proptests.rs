//! Property-based tests over core invariants, spanning crates.

use bytes::Bytes;
use gallery_core::metrics::{format_metric_blob, parse_metric_blob};
use gallery_core::semver::{ChangeKind, SemVer};
use gallery_core::{Gallery, InstanceSpec, ModelSpec};
use gallery_service::{Request, Response, WireConstraint, WireOp, WireValue};
use gallery_store::blob::cache::CachedBlobStore;
use gallery_store::blob::checksum::crc32;
use gallery_store::blob::memory::MemoryBlobStore;
use gallery_store::{Constraint, ObjectStore, Op, Query, Record, Value};
use proptest::prelude::*;

fn arb_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Null),
        any::<bool>().prop_map(Value::Bool),
        any::<i64>().prop_map(Value::Int),
        any::<f64>().prop_map(Value::Float),
        "[a-zA-Z0-9_ ]{0,24}".prop_map(Value::Str),
        proptest::collection::vec(any::<u8>(), 0..64).prop_map(Value::Bytes),
        any::<i64>().prop_map(Value::Timestamp),
    ]
}

fn arb_wire_value() -> impl Strategy<Value = WireValue> {
    prop_oneof![
        Just(WireValue::Null),
        any::<bool>().prop_map(WireValue::Bool),
        any::<i64>().prop_map(WireValue::Int),
        any::<f64>()
            .prop_filter("finite", |x| x.is_finite())
            .prop_map(WireValue::Float),
        "[a-zA-Z0-9_]{0,16}".prop_map(WireValue::Str),
    ]
}

proptest! {
    /// Value total ordering is antisymmetric and transitive on triples.
    #[test]
    fn value_ordering_is_total(a in arb_value(), b in arb_value(), c in arb_value()) {
        use std::cmp::Ordering;
        let ab = a.total_cmp(&b);
        let ba = b.total_cmp(&a);
        prop_assert_eq!(ab, ba.reverse());
        if ab == Ordering::Equal {
            prop_assert_eq!(a.total_cmp(&c), b.total_cmp(&c));
        }
        if ab != Ordering::Greater && b.total_cmp(&c) != Ordering::Greater {
            prop_assert_ne!(a.total_cmp(&c), Ordering::Greater);
        }
    }

    /// CRC32 detects any single-byte corruption.
    #[test]
    fn crc32_detects_single_byte_change(
        mut data in proptest::collection::vec(any::<u8>(), 1..256),
        index in any::<prop::sample::Index>(),
        flip in 1u8..=255,
    ) {
        let before = crc32(&data);
        let i = index.index(data.len());
        data[i] ^= flip;
        prop_assert_ne!(before, crc32(&data));
    }

    /// Metric blob format: format → parse is the identity.
    #[test]
    fn metric_blob_roundtrip(
        pairs in proptest::collection::vec(
            ("[a-z][a-z0-9_]{0,12}", any::<f64>().prop_filter("finite", |x| x.is_finite())),
            0..8,
        )
    ) {
        let pairs: Vec<(String, f64)> = pairs;
        let blob = format_metric_blob(&pairs);
        let parsed = parse_metric_blob(&blob).unwrap();
        prop_assert_eq!(parsed, pairs);
    }

    /// SemVer bumps always produce strictly larger versions.
    #[test]
    fn semver_bumps_increase(
        major in 0u32..1000,
        minor in 0u32..1000,
        patch in 0u32..1000,
        kind in prop_oneof![
            Just(ChangeKind::ArchitectureChange),
            Just(ChangeKind::FeatureOrHyperparamChange),
            Just(ChangeKind::Retrain),
        ],
    ) {
        let v = SemVer::new(major, minor, patch);
        prop_assert!(v.bump(kind) > v);
    }

    /// Wire protocol: ModelQuery requests roundtrip for arbitrary
    /// constraint lists.
    #[test]
    fn wire_model_query_roundtrip(
        constraints in proptest::collection::vec(
            ("[a-zA-Z_]{1,12}", 0u8..8, arb_wire_value()),
            0..8,
        )
    ) {
        let constraints: Vec<WireConstraint> = constraints
            .into_iter()
            .map(|(field, op, value)| {
                let op = match op {
                    0 => WireOp::Eq, 1 => WireOp::Ne, 2 => WireOp::Lt, 3 => WireOp::Le,
                    4 => WireOp::Gt, 5 => WireOp::Ge, 6 => WireOp::Contains,
                    _ => WireOp::StartsWith,
                };
                WireConstraint::new(field, op, value)
            })
            .collect();
        let req = Request::ModelQuery { constraints };
        let back = Request::decode(req.encode()).unwrap();
        prop_assert_eq!(back, req);
    }

    /// Wire protocol never panics on arbitrary garbage frames.
    #[test]
    fn wire_decode_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..128)) {
        let _ = Request::decode(Bytes::from(bytes.clone()));
        let _ = Response::decode(Bytes::from(bytes));
    }

    /// Expression parser never panics and, when it parses, evaluation with
    /// an empty context never panics either.
    #[test]
    fn expression_pipeline_never_panics(src in "[a-z0-9 .()\"'<>=!&|+*/-]{0,48}") {
        if let Ok(expr) = gallery_rules::parser::parse(&src) {
            let _ = gallery_rules::eval::eval(&expr, &gallery_rules::EvalContext::new());
        }
    }

    /// Blob cache: hits + misses == gets; cached bytes never exceed budget.
    #[test]
    fn cache_respects_budget(
        sizes in proptest::collection::vec(1usize..64, 1..20),
        budget in 32usize..256,
        access in proptest::collection::vec(any::<prop::sample::Index>(), 0..40),
    ) {
        let cache = CachedBlobStore::new(std::sync::Arc::new(MemoryBlobStore::new()), budget);
        let mut locations = Vec::new();
        for s in &sizes {
            locations.push(cache.put(Bytes::from(vec![0u8; *s])).unwrap().location);
        }
        for ix in &access {
            let loc = &locations[ix.index(locations.len())];
            let _ = cache.get(loc).unwrap();
        }
        let stats = cache.stats();
        prop_assert!(stats.bytes_cached as usize <= budget);
        prop_assert_eq!(stats.hits + stats.misses, access.len() as u64);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Registry invariant: every uploaded blob is retrievable and
    /// byte-identical; display versions increase monotonically per model.
    #[test]
    fn upload_fetch_identity(blobs in proptest::collection::vec(
        proptest::collection::vec(any::<u8>(), 0..512), 1..8,
    )) {
        let g = Gallery::in_memory();
        let model = g.create_model(ModelSpec::new("p", "prop_base").name("m")).unwrap();
        let mut last_minor = None;
        for blob in &blobs {
            let inst = g
                .upload_instance(&model.id, InstanceSpec::new(), Bytes::from(blob.clone()))
                .unwrap();
            let back = g.fetch_instance_blob(&inst.id).unwrap();
            prop_assert_eq!(&back[..], &blob[..]);
            if let Some(prev) = last_minor {
                prop_assert_eq!(inst.display_version.minor, prev + 1);
            }
            last_minor = Some(inst.display_version.minor);
        }
    }

    /// Query results under a conjunctive constraint always satisfy every
    /// constraint (store-level soundness).
    #[test]
    fn query_results_satisfy_constraints(
        rows in proptest::collection::vec((0i64..50, 0i64..50), 1..40),
        threshold in 0i64..50,
    ) {
        let store = gallery_store::MetadataStore::in_memory();
        store.create_table(gallery_store::TableSchema::new(
            "t", "id",
            vec![
                gallery_store::ColumnDef::new("id", gallery_store::ValueType::Str),
                gallery_store::ColumnDef::new("a", gallery_store::ValueType::Int).hash_indexed(),
                gallery_store::ColumnDef::new("b", gallery_store::ValueType::Int).btree_indexed(),
            ],
        ).unwrap()).unwrap();
        for (i, (a, b)) in rows.iter().enumerate() {
            store.insert("t", Record::new()
                .set("id", format!("r{i}"))
                .set("a", *a)
                .set("b", *b)).unwrap();
        }
        let q = Query::all()
            .and(Constraint::new("b", Op::Lt, threshold))
            .and(Constraint::new("a", Op::Ge, 10i64));
        let results = store.query("t", &q).unwrap();
        let expected = rows.iter().filter(|(a, b)| *b < threshold && *a >= 10).count();
        prop_assert_eq!(results.len(), expected);
        for r in &results {
            prop_assert!(r.get("b").unwrap().as_int().unwrap() < threshold);
            prop_assert!(r.get("a").unwrap().as_int().unwrap() >= 10);
        }
    }
}
