//! Cross-crate integration: a forecasting fleet managed entirely through
//! the wire protocol — multiple stateless server replicas, multiple client
//! threads, one shared store. Exercises the full §4.1 API surface end to
//! end over encode/decode.

use bytes::Bytes;
use gallery_core::Gallery;
use gallery_forecast::{AnyForecaster, CityConfig, Forecaster, MeanOfLastK};
use gallery_rules::{ActionRegistry, CompiledRule, RuleEngine};
use gallery_service::{
    GalleryClient, GalleryServer, InProcCluster, WireConstraint, WireOp, WireValue,
};
use std::sync::Arc;

fn cluster(gallery: Arc<Gallery>, replicas: usize) -> InProcCluster {
    InProcCluster::start(move || GalleryServer::new(Arc::clone(&gallery)), replicas)
}

#[test]
fn concurrent_clients_share_one_fleet() {
    let gallery = Arc::new(Gallery::in_memory());
    let cluster = cluster(Arc::clone(&gallery), 4);

    let mut handles = Vec::new();
    for t in 0..4 {
        let client = GalleryClient::new(cluster.connect());
        handles.push(std::thread::spawn(move || {
            let mut instance_ids = Vec::new();
            for i in 0..10 {
                let model = client
                    .create_model(
                        "fleet",
                        &format!("demand/city_{t}_{i}"),
                        "heuristic",
                        "fc",
                        "",
                        "{}",
                    )
                    .unwrap();
                let inst = client
                    .upload_model(
                        &model.id,
                        &format!(r#"{{"city":"city_{t}_{i}","model_name":"heuristic"}}"#),
                        Bytes::from(format!("weights {t}/{i}")),
                    )
                    .unwrap();
                client
                    .insert_metric(&inst.id, "mape", "validation", 0.05 + 0.01 * i as f64)
                    .unwrap();
                instance_ids.push(inst.id);
            }
            instance_ids
        }));
    }
    let all_ids: Vec<String> = handles
        .into_iter()
        .flat_map(|h| h.join().unwrap())
        .collect();
    assert_eq!(all_ids.len(), 40);

    // Any client sees all 40 through search.
    let client = GalleryClient::new(cluster.connect());
    let found = client
        .model_query(vec![
            WireConstraint::new("modelName", WireOp::Eq, WireValue::Str("heuristic".into())),
            WireConstraint::new("metricName", WireOp::Eq, WireValue::Str("mape".into())),
            WireConstraint::new("metricValue", WireOp::Lt, WireValue::Float(1.0)),
        ])
        .unwrap();
    assert_eq!(found.len(), 40);
    // tighter threshold prunes
    let good = client
        .model_query(vec![
            WireConstraint::new("metricName", WireOp::Eq, WireValue::Str("mape".into())),
            WireConstraint::new("metricValue", WireOp::Lt, WireValue::Float(0.08)),
        ])
        .unwrap();
    assert!(good.len() < 40 && !good.is_empty());
}

#[test]
fn real_model_blob_served_over_the_wire() {
    let gallery = Arc::new(Gallery::in_memory());
    let cluster = cluster(Arc::clone(&gallery), 2);
    let client = GalleryClient::new(cluster.connect());

    // Offline: train a real forecaster and upload its blob via the client.
    let city = CityConfig::new("wire_city", 5);
    let series = city.generate(city.samples_per_day() * 7, 0);
    let mut trained = AnyForecaster::MeanOfLastK(MeanOfLastK::new(5));
    trained.fit(&series).unwrap();
    let model = client
        .create_model("sim", "wire_demand", "heuristic", "sim-team", "", "{}")
        .unwrap();
    let inst = client
        .upload_model(&model.id, "{}", Bytes::from(trained.to_blob()))
        .unwrap();

    // Serving side: fetch, deserialize, predict — identical to local.
    let blob = client.fetch_blob(&inst.id).unwrap();
    let served = AnyForecaster::from_blob(&blob).unwrap();
    let p_local = trained.forecast_next(&series.values, series.len(), false);
    let p_wire = served.forecast_next(&series.values, series.len(), false);
    assert_eq!(p_local, p_wire);
}

#[test]
fn rule_engine_behind_the_service() {
    let gallery = Arc::new(Gallery::in_memory());
    let (actions, log) = ActionRegistry::with_defaults();
    let engine = RuleEngine::new(Arc::clone(&gallery), actions, 1);
    let mut doc = gallery_rules::rule::listing2_action_rule();
    doc.rule.callback_actions = vec!["alert".into()];
    engine.register(CompiledRule::compile(&doc).unwrap());
    engine.attach();

    let engine_for_server = Arc::clone(&engine);
    let gallery_for_server = Arc::clone(&gallery);
    let cluster = InProcCluster::start(
        move || {
            GalleryServer::new(Arc::clone(&gallery_for_server))
                .with_engine(Arc::clone(&engine_for_server))
        },
        2,
    );
    let client = GalleryClient::new(cluster.connect());
    let model = client
        .create_model("forecasting", "svc_rf", "Random Forest", "fc", "", "{}")
        .unwrap();
    let inst = client
        .upload_model(
            &model.id,
            r#"{"model_name":"Random Forest","model_domain":"UberX"}"#,
            Bytes::from_static(b"rf"),
        )
        .unwrap();
    // metric via the wire triggers the rule engine via events
    client
        .insert_metric(&inst.id, "bias", "validation", 0.02)
        .unwrap();
    engine.drain();
    assert_eq!(log.len(), 1, "alert action fired once");

    // direct trigger via the service API also works
    client.trigger_rule(&doc.uuid, &inst.id).unwrap();
    engine.drain();
    assert_eq!(log.len(), 2);
}
