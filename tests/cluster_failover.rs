//! Kill-a-node failover drills against the sharded, replicated cluster
//! (docs/replication.md): deterministic chaos on a manual clock proving
//! the invariants the subsystem exists for — zero lost acknowledged
//! writes, bounded follower-read staleness, convergence after resync.

use gallery_core::{ManualClock, SimulatedSleeper};
use gallery_service::telemetry::{kinds, parse_exposition, parse_samples, SpanContext, Telemetry};
use gallery_service::{
    run_drill, ClusterConfig, DrillAction, DrillPlan, GalleryClient, ReplicaRole, Request,
    Resilience, RetryPolicy, SimCluster,
};
use std::sync::Arc;

fn drill_cluster(nodes: usize, replication: usize, clock: &ManualClock) -> SimCluster {
    SimCluster::start_with(
        ClusterConfig::new(nodes)
            .with_shards(nodes as u32 * 2)
            .with_replication(replication)
            .with_follower_reads(true, 0),
        Arc::new(clock.clone()),
        Telemetry::new(),
    )
}

fn resilient_client(cluster: &SimCluster, clock: &ManualClock, seed: u64) -> GalleryClient {
    let resilience = Arc::new(Resilience::new(
        RetryPolicy::standard()
            .with_max_attempts(8)
            .with_deadline_ms(60_000),
        Arc::new(clock.clone()),
        Arc::new(SimulatedSleeper::new(clock.clone())),
        seed,
    ));
    GalleryClient::new(cluster.transport()).with_resilience(resilience)
}

#[test]
fn kill_a_node_drill_loses_no_acked_writes_across_seeds() {
    for seed in 1..=5u64 {
        let clock = ManualClock::new(0);
        let cluster = drill_cluster(3, 2, &clock);
        // Kill node 0 — it leads a third of the shards — then revive it.
        let plan = DrillPlan::kill_one(seed, 30, 0);
        let report = run_drill(&cluster, &clock, &plan);
        assert!(
            report.holds(),
            "seed {seed}: invariants violated: {report:?}"
        );
        assert_eq!(report.lost, 0, "seed {seed}: {report:?}");
        assert_eq!(report.diverged, 0, "seed {seed}: {report:?}");
        // The client retried across the failover: most writes acked.
        assert!(
            report.acked >= report.attempted * 2 / 3,
            "seed {seed}: too many rejections: {report:?}"
        );
        // Killing a leader-bearing node must have forced promotions.
        assert!(report.failovers > 0, "seed {seed}: {report:?}");
    }
}

#[test]
fn drill_is_deterministic_for_a_seed() {
    let run = |seed: u64| {
        let clock = ManualClock::new(0);
        let cluster = drill_cluster(3, 2, &clock);
        let report = run_drill(&cluster, &clock, &DrillPlan::kill_one(seed, 24, 1));
        (
            report.acked,
            report.rejected,
            report.failovers,
            report.max_follower_lag_ops,
        )
    };
    assert_eq!(run(42), run(42));
}

#[test]
fn retry_rides_through_a_failover() {
    let clock = ManualClock::new(0);
    let cluster = drill_cluster(3, 2, &clock);
    let client = resilient_client(&cluster, &clock, 7);
    // Warm write, then kill every node once the map says who leads what.
    let before = client
        .create_model("p", "bv-before", "m", "o", "", "{}")
        .unwrap();
    cluster.kill_node(0);
    // Every subsequent write still succeeds: the router fails shards led
    // by node 0 over to their followers and the client's retry re-sends
    // the same idempotency key to the new leader.
    for i in 0..10 {
        client
            .create_model("p", &format!("bv-{i}"), "m", "o", "", "{}")
            .unwrap();
    }
    // Reads of pre-kill state survive too (served by the promoted
    // follower, which had the write replicated before the ack).
    assert_eq!(client.get_model(&before.id).unwrap().id, before.id);
    let telemetry = cluster.telemetry();
    assert!(
        telemetry
            .registry()
            .counter("gallery_cluster_failovers_total", &[])
            .get()
            > 0,
        "killing a leader-bearing node must fail over"
    );
}

#[test]
fn revived_node_is_resynced_and_serves_again() {
    let clock = ManualClock::new(0);
    let cluster = drill_cluster(2, 2, &clock);
    let client = resilient_client(&cluster, &clock, 9);
    cluster.kill_node(1);
    let mut ids = Vec::new();
    for i in 0..8 {
        ids.push(
            client
                .create_model("p", &format!("bv-{i}"), "m", "o", "", "{}")
                .unwrap()
                .id,
        );
    }
    cluster.revive_node(1);
    // After resync every write is on every replica of its shard.
    let map = cluster.router().map_snapshot();
    for id in &ids {
        let shard = gallery_core::shard_of(id, map.shard_count());
        for node in map.replicas(shard).all() {
            let server = cluster.node(node).replica(shard).unwrap();
            assert!(
                server
                    .gallery()
                    .get_model(&gallery_core::ModelId(id.clone()))
                    .is_ok(),
                "node {node} shard {shard} missing {id} after resync"
            );
        }
    }
    for shard in 0..map.shard_count() {
        assert_eq!(cluster.router().follower_lag(shard), 0, "shard {shard}");
    }
}

#[test]
fn follower_reads_stay_within_the_staleness_budget() {
    let clock = ManualClock::new(0);
    let cluster = SimCluster::start_with(
        ClusterConfig::new(3)
            .with_shards(6)
            .with_replication(3)
            .with_follower_reads(true, 4),
        Arc::new(clock.clone()),
        Telemetry::new(),
    );
    let client = resilient_client(&cluster, &clock, 11);
    let mut ids = Vec::new();
    for i in 0..12 {
        let id = client
            .create_model("p", &format!("bv-{i}"), "m", "o", "", "{}")
            .unwrap()
            .id;
        // Reads round-robin over leader + in-budget followers, and every
        // replica already has the write (pump-before-ack): read-your-write
        // holds even from a follower.
        for _ in 0..3 {
            assert_eq!(client.get_model(&id).unwrap().id, id);
        }
        ids.push(id);
    }
    let follower_reads = cluster
        .telemetry()
        .registry()
        .counter("gallery_cluster_follower_reads_total", &[])
        .get();
    assert!(follower_reads > 0, "round-robin must hit followers");
    for shard in 0..cluster.router().shard_count() {
        assert!(cluster.router().follower_lag(shard) <= 4, "shard {shard}");
    }
}

#[test]
fn double_fault_drill_still_holds_with_three_replicas() {
    // Kill two different nodes at different times with replication=3 —
    // there is always a live replica, so no acked write may be lost.
    let clock = ManualClock::new(0);
    let cluster = drill_cluster(3, 3, &clock);
    let plan = DrillPlan {
        seed: 21,
        writes: 30,
        events: vec![
            (5, DrillAction::Kill(0)),
            (15, DrillAction::Revive(0)),
            (20, DrillAction::Kill(2)),
            (26, DrillAction::Revive(2)),
        ],
        step_ms: 10,
    };
    let report = run_drill(&cluster, &clock, &plan);
    assert!(report.holds(), "{report:?}");
    assert!(report.failovers > 0, "{report:?}");
}

// ---- Cluster-wide tracing & federation (docs/observability.md) ----

/// The router forwards the *client's* frame byte-for-byte inside the
/// shard envelope — so the trace envelope (and the idempotency key it
/// shares the preamble with) must survive unwrapping unchanged.
#[test]
fn trace_envelope_rides_the_shard_envelope_byte_for_byte() {
    use gallery_service::messages::{decode_sharded, encode_sharded};
    let ctx = SpanContext {
        trace_id: 0xFEED_F00D,
        span_id: 42,
    };
    let inner = Request::ReplStatus.encode_with(Some("key-1"), Some(ctx));
    let (shard, unwrapped) = decode_sharded(encode_sharded(5, inner.clone()))
        .unwrap()
        .unwrap();
    assert_eq!(shard, 5);
    assert_eq!(
        unwrapped, inner,
        "shard forwarding must not re-encode the inner frame"
    );
    let decoded = Request::decode_full(unwrapped).unwrap();
    assert_eq!(decoded.trace, Some(ctx));
    assert_eq!(decoded.key.as_deref(), Some("key-1"));
    assert!(matches!(decoded.request, Request::ReplStatus));
}

/// A write that rides through a failover stays ONE trace: the client
/// re-sends the identical frame (same trace envelope, same idempotency
/// key), so the failed attempt, the failover election, and the retry
/// that lands on the promoted leader all share a trace_id.
#[test]
fn failover_retry_keeps_one_trace_across_attempts() {
    let clock = ManualClock::new(0);
    let cluster = drill_cluster(3, 2, &clock);
    let resilience = Arc::new(Resilience::new(
        RetryPolicy::standard()
            .with_max_attempts(8)
            .with_deadline_ms(60_000),
        Arc::new(clock.clone()),
        Arc::new(SimulatedSleeper::new(clock.clone())),
        23,
    ));
    let client = GalleryClient::new(cluster.transport())
        .with_resilience(resilience)
        .with_telemetry(Arc::clone(cluster.telemetry()));
    client
        .create_model("p", "bv-warm", "m", "o", "", "{}")
        .unwrap();
    // Pick a base version whose shard node 0 leads, so the write below is
    // guaranteed to hit the dead leader on its first attempt.
    let map = cluster.router().map_snapshot();
    let bv = (0..)
        .map(|i| format!("bv-f{i}"))
        .find(|bv| map.leader_of(gallery_core::shard_of(bv, map.shard_count())) == 0)
        .unwrap();
    cluster.kill_node(0);
    client.create_model("p", &bv, "m", "o", "", "{}").unwrap();

    let events = cluster.telemetry().events();
    let failovers = events.of_kind(kinds::CLUSTER_FAILOVER);
    assert!(!failovers.is_empty(), "killing the leader must fail over");
    let failover = &failovers[0];
    let trace_id = failover
        .trace_id
        .expect("failover event carries the triggering write's trace");
    for field in ["shard", "from", "to", "epoch"] {
        assert!(failover.field(field).is_some(), "missing {field}");
    }
    // Both physical attempts of the one logical call emitted rpc.attempt
    // on that same trace.
    let attempts = events
        .for_trace(trace_id)
        .iter()
        .filter(|e| e.kind == kinds::RPC_ATTEMPT)
        .count();
    assert!(attempts >= 2, "expected a retry, saw {attempts} attempt(s)");
    // And the trace's spans cover the whole story: client root, the
    // failed and retried route, the election, and the handler on the
    // promoted leader.
    let spans = cluster.telemetry().tracer().spans_for_trace(trace_id);
    let names: Vec<&str> = spans.iter().map(|s| s.name.as_str()).collect();
    for expected in [
        "rpc.client/createGalleryModel",
        "cluster/route",
        "cluster/failover",
        "rpc.server/createGalleryModel",
    ] {
        assert!(names.contains(&expected), "missing {expected} in {names:?}");
    }
}

/// Wiping a follower replica behind the router's back opens a WAL
/// sequence gap. The next ship detects it, emits exactly one
/// cluster.ship_gap event (shard + node + epoch + seqs), resets shipping
/// progress to the follower's truth, and re-ships the full log — the
/// follower converges and stays in service.
#[test]
fn ship_gap_emits_one_event_and_self_heals() {
    let clock = ManualClock::new(0);
    let cluster = drill_cluster(3, 2, &clock);
    let client = resilient_client(&cluster, &clock, 13);
    let first = client
        .create_model("p", "bv-gap", "m", "o", "", "{}")
        .unwrap();
    let map = cluster.router().map_snapshot();
    let shard = gallery_core::shard_of(&first.id, map.shard_count());
    let follower = map.replicas(shard).followers[0];
    cluster
        .node(follower)
        .reset_replica(shard, ReplicaRole::Follower);
    // A second write to the SAME shard triggers the ship that trips over
    // the gap.
    let bv2 = (0..)
        .map(|i| format!("bv-gap2-{i}"))
        .find(|bv| gallery_core::shard_of(bv, map.shard_count()) == shard)
        .unwrap();
    let second = client.create_model("p", &bv2, "m", "o", "", "{}").unwrap();

    let gaps = cluster
        .telemetry()
        .events()
        .of_kind(kinds::CLUSTER_SHIP_GAP);
    assert_eq!(gaps.len(), 1, "exactly one gap event: {gaps:?}");
    assert_eq!(gaps[0].field("shard"), Some(shard.to_string().as_str()));
    assert_eq!(gaps[0].field("node"), Some(follower.to_string().as_str()));
    assert!(gaps[0].field("epoch").is_some());
    // The wiped replica restarts at its schema-bootstrap sequence, which
    // is strictly behind where the router thought shipping had reached.
    let from_seq: u64 = gaps[0].field("from_seq").unwrap().parse().unwrap();
    let applied_seq: u64 = gaps[0].field("applied_seq").unwrap().parse().unwrap();
    assert!(applied_seq < from_seq, "{applied_seq} vs {from_seq}");
    // Self-healed within the same pump: zero lag, both writes on the
    // wiped follower, node still up.
    assert_eq!(cluster.router().follower_lag(shard), 0);
    let server = cluster.node(follower).replica(shard).unwrap();
    for id in [&first.id, &second.id] {
        assert!(
            server
                .gallery()
                .get_model(&gallery_core::ModelId(id.clone()))
                .is_ok(),
            "follower missing {id} after gap recovery"
        );
    }
}

/// `Probe{section:"cluster"}` answers with the federated exposition:
/// lint-clean text format, a `node="<id>"` section per live node plus the
/// router's own, and derived liveness gauges that track a kill on the
/// very next scrape.
#[test]
fn federated_exposition_relabels_nodes_and_tracks_liveness() {
    let clock = ManualClock::new(0);
    let cluster = drill_cluster(3, 2, &clock);
    let client = resilient_client(&cluster, &clock, 17);
    for i in 0..6 {
        client
            .create_model("p", &format!("bv-{i}"), "m", "o", "", "{}")
            .unwrap();
    }
    let text = client.probe("cluster").unwrap();
    parse_exposition(&text).unwrap();
    let samples = parse_samples(&text).unwrap();
    let live = samples
        .iter()
        .find(|s| s.name == "gallery_cluster_live_nodes")
        .unwrap();
    assert_eq!(live.value, 3.0);
    let nodes: std::collections::BTreeSet<&str> =
        samples.iter().filter_map(|s| s.label("node")).collect();
    for expected in ["router", "0", "1", "2"] {
        assert!(nodes.contains(expected), "missing node={expected}");
    }

    cluster.kill_node(2);
    let text = client.probe("cluster").unwrap();
    let samples = parse_samples(&text).unwrap();
    assert_eq!(
        samples
            .iter()
            .find(|s| s.name == "gallery_cluster_live_nodes")
            .unwrap()
            .value,
        2.0,
        "the scrape itself discovers the dead node"
    );
    let up = samples
        .iter()
        .find(|s| s.name == "gallery_cluster_node_up" && s.label("node") == Some("2"))
        .unwrap();
    assert_eq!(up.value, 0.0);
    // The dead node contributes no scraped section — only the derived
    // gauges may still mention it.
    assert!(
        samples
            .iter()
            .all(|s| s.name.starts_with("gallery_cluster_") || s.label("node") != Some("2")),
        "dead node must not contribute scraped series"
    );
}
