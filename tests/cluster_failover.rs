//! Kill-a-node failover drills against the sharded, replicated cluster
//! (docs/replication.md): deterministic chaos on a manual clock proving
//! the invariants the subsystem exists for — zero lost acknowledged
//! writes, bounded follower-read staleness, convergence after resync.

use gallery_core::{ManualClock, SimulatedSleeper};
use gallery_service::telemetry::Telemetry;
use gallery_service::{
    run_drill, ClusterConfig, DrillAction, DrillPlan, GalleryClient, Resilience, RetryPolicy,
    SimCluster,
};
use std::sync::Arc;

fn drill_cluster(nodes: usize, replication: usize, clock: &ManualClock) -> SimCluster {
    SimCluster::start_with(
        ClusterConfig::new(nodes)
            .with_shards(nodes as u32 * 2)
            .with_replication(replication)
            .with_follower_reads(true, 0),
        Arc::new(clock.clone()),
        Telemetry::new(),
    )
}

fn resilient_client(cluster: &SimCluster, clock: &ManualClock, seed: u64) -> GalleryClient {
    let resilience = Arc::new(Resilience::new(
        RetryPolicy::standard()
            .with_max_attempts(8)
            .with_deadline_ms(60_000),
        Arc::new(clock.clone()),
        Arc::new(SimulatedSleeper::new(clock.clone())),
        seed,
    ));
    GalleryClient::new(cluster.transport()).with_resilience(resilience)
}

#[test]
fn kill_a_node_drill_loses_no_acked_writes_across_seeds() {
    for seed in 1..=5u64 {
        let clock = ManualClock::new(0);
        let cluster = drill_cluster(3, 2, &clock);
        // Kill node 0 — it leads a third of the shards — then revive it.
        let plan = DrillPlan::kill_one(seed, 30, 0);
        let report = run_drill(&cluster, &clock, &plan);
        assert!(
            report.holds(),
            "seed {seed}: invariants violated: {report:?}"
        );
        assert_eq!(report.lost, 0, "seed {seed}: {report:?}");
        assert_eq!(report.diverged, 0, "seed {seed}: {report:?}");
        // The client retried across the failover: most writes acked.
        assert!(
            report.acked >= report.attempted * 2 / 3,
            "seed {seed}: too many rejections: {report:?}"
        );
        // Killing a leader-bearing node must have forced promotions.
        assert!(report.failovers > 0, "seed {seed}: {report:?}");
    }
}

#[test]
fn drill_is_deterministic_for_a_seed() {
    let run = |seed: u64| {
        let clock = ManualClock::new(0);
        let cluster = drill_cluster(3, 2, &clock);
        let report = run_drill(&cluster, &clock, &DrillPlan::kill_one(seed, 24, 1));
        (
            report.acked,
            report.rejected,
            report.failovers,
            report.max_follower_lag_ops,
        )
    };
    assert_eq!(run(42), run(42));
}

#[test]
fn retry_rides_through_a_failover() {
    let clock = ManualClock::new(0);
    let cluster = drill_cluster(3, 2, &clock);
    let client = resilient_client(&cluster, &clock, 7);
    // Warm write, then kill every node once the map says who leads what.
    let before = client
        .create_model("p", "bv-before", "m", "o", "", "{}")
        .unwrap();
    cluster.kill_node(0);
    // Every subsequent write still succeeds: the router fails shards led
    // by node 0 over to their followers and the client's retry re-sends
    // the same idempotency key to the new leader.
    for i in 0..10 {
        client
            .create_model("p", &format!("bv-{i}"), "m", "o", "", "{}")
            .unwrap();
    }
    // Reads of pre-kill state survive too (served by the promoted
    // follower, which had the write replicated before the ack).
    assert_eq!(client.get_model(&before.id).unwrap().id, before.id);
    let telemetry = cluster.telemetry();
    assert!(
        telemetry
            .registry()
            .counter("gallery_cluster_failovers_total", &[])
            .get()
            > 0,
        "killing a leader-bearing node must fail over"
    );
}

#[test]
fn revived_node_is_resynced_and_serves_again() {
    let clock = ManualClock::new(0);
    let cluster = drill_cluster(2, 2, &clock);
    let client = resilient_client(&cluster, &clock, 9);
    cluster.kill_node(1);
    let mut ids = Vec::new();
    for i in 0..8 {
        ids.push(
            client
                .create_model("p", &format!("bv-{i}"), "m", "o", "", "{}")
                .unwrap()
                .id,
        );
    }
    cluster.revive_node(1);
    // After resync every write is on every replica of its shard.
    let map = cluster.router().map_snapshot();
    for id in &ids {
        let shard = gallery_core::shard_of(id, map.shard_count());
        for node in map.replicas(shard).all() {
            let server = cluster.node(node).replica(shard).unwrap();
            assert!(
                server
                    .gallery()
                    .get_model(&gallery_core::ModelId(id.clone()))
                    .is_ok(),
                "node {node} shard {shard} missing {id} after resync"
            );
        }
    }
    for shard in 0..map.shard_count() {
        assert_eq!(cluster.router().follower_lag(shard), 0, "shard {shard}");
    }
}

#[test]
fn follower_reads_stay_within_the_staleness_budget() {
    let clock = ManualClock::new(0);
    let cluster = SimCluster::start_with(
        ClusterConfig::new(3)
            .with_shards(6)
            .with_replication(3)
            .with_follower_reads(true, 4),
        Arc::new(clock.clone()),
        Telemetry::new(),
    );
    let client = resilient_client(&cluster, &clock, 11);
    let mut ids = Vec::new();
    for i in 0..12 {
        let id = client
            .create_model("p", &format!("bv-{i}"), "m", "o", "", "{}")
            .unwrap()
            .id;
        // Reads round-robin over leader + in-budget followers, and every
        // replica already has the write (pump-before-ack): read-your-write
        // holds even from a follower.
        for _ in 0..3 {
            assert_eq!(client.get_model(&id).unwrap().id, id);
        }
        ids.push(id);
    }
    let follower_reads = cluster
        .telemetry()
        .registry()
        .counter("gallery_cluster_follower_reads_total", &[])
        .get();
    assert!(follower_reads > 0, "round-robin must hit followers");
    for shard in 0..cluster.router().shard_count() {
        assert!(cluster.router().follower_lag(shard) <= 4, "shard {shard}");
    }
}

#[test]
fn double_fault_drill_still_holds_with_three_replicas() {
    // Kill two different nodes at different times with replication=3 —
    // there is always a live replica, so no acked write may be lost.
    let clock = ManualClock::new(0);
    let cluster = drill_cluster(3, 3, &clock);
    let plan = DrillPlan {
        seed: 21,
        writes: 30,
        events: vec![
            (5, DrillAction::Kill(0)),
            (15, DrillAction::Revive(0)),
            (20, DrillAction::Kill(2)),
            (26, DrillAction::Revive(2)),
        ],
        step_ms: 10,
    };
    let report = run_drill(&cluster, &clock, &plan);
    assert!(report.holds(), "{report:?}");
    assert!(report.failovers > 0, "{report:?}");
}
