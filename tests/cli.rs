//! End-to-end test of the `gallery` CLI binary: a full workflow against a
//! durable data directory across separate process invocations (each
//! invocation opens, mutates, and closes the store — statelessness).

use std::path::PathBuf;
use std::process::{Command, Output};

fn data_dir() -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "gallery-cli-test-{}-{}",
        std::process::id(),
        rand_suffix()
    ));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn rand_suffix() -> u64 {
    use std::time::{SystemTime, UNIX_EPOCH};
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .unwrap()
        .subsec_nanos() as u64
}

fn gallery(data: &PathBuf, args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_gallery"))
        .arg("--data")
        .arg(data)
        .args(args)
        .output()
        .expect("spawn gallery CLI")
}

fn ok_stdout(data: &PathBuf, args: &[&str]) -> String {
    let out = gallery(data, args);
    assert!(
        out.status.success(),
        "gallery {args:?} failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).unwrap().trim().to_owned()
}

#[test]
fn cli_full_workflow() {
    let data = data_dir();

    // create-model prints the model id
    let model_id = ok_stdout(
        &data,
        &[
            "create-model",
            "marketplace",
            "demand/sf",
            "--name",
            "ridge",
            "--owner",
            "fc",
        ],
    );
    assert_eq!(model_id.len(), 36, "uuid expected, got {model_id}");

    // upload a blob file with metadata
    let blob_path = data.join("weights.bin");
    std::fs::write(&blob_path, b"cli weights").unwrap();
    let upload_out = ok_stdout(
        &data,
        &[
            "upload",
            &model_id,
            blob_path.to_str().unwrap(),
            "--meta",
            "city=sf",
            "--meta",
            "model_name=ridge",
        ],
    );
    let instance_id = upload_out.split('\t').next().unwrap().to_owned();
    assert!(upload_out.ends_with("1.0"));

    // metric + query
    ok_stdout(
        &data,
        &["metric", &instance_id, "mape", "validation", "0.08"],
    );
    let hits = ok_stdout(
        &data,
        &[
            "query",
            "model_name=ridge",
            "metricName=mape",
            "metricValue<0.25",
        ],
    );
    assert!(hits.contains(&instance_id));
    let no_hits = ok_stdout(&data, &["query", "metricName=mape", "metricValue<0.01"]);
    assert!(no_hits.is_empty());

    // deploy + deployed
    ok_stdout(&data, &["deploy", &model_id, &instance_id, "production"]);
    assert_eq!(
        ok_stdout(&data, &["deployed", &model_id, "production"]),
        instance_id
    );

    // fetch the blob back byte-identically
    let out_path = data.join("roundtrip.bin");
    ok_stdout(&data, &["fetch", &instance_id, out_path.to_str().unwrap()]);
    assert_eq!(std::fs::read(&out_path).unwrap(), b"cli weights");

    // stage transitions
    assert_eq!(ok_stdout(&data, &["stage", &instance_id]), "trained");
    assert_eq!(
        ok_stdout(&data, &["stage", &instance_id, "evaluated"]),
        "evaluated"
    );

    // dependency wiring
    let upstream_id = ok_stdout(
        &data,
        &["create-model", "marketplace", "weather", "--name", "wx"],
    );
    std::fs::write(data.join("wx.bin"), b"wx").unwrap();
    ok_stdout(
        &data,
        &[
            "upload",
            &upstream_id,
            data.join("wx.bin").to_str().unwrap(),
        ],
    );
    ok_stdout(&data, &["dep-add", &model_id, &upstream_id]);
    let deps = ok_stdout(&data, &["deps", &model_id]);
    assert!(deps.contains(&upstream_id));

    // health + audit
    let health = ok_stdout(&data, &["health", &instance_id]);
    assert!(health.contains("reproducibility"));
    let audit = ok_stdout(&data, &["audit"]);
    assert!(audit.contains("CONSISTENT"), "{audit}");

    // compact the WAL, then confirm everything still reads back
    let compacted = ok_stdout(&data, &["compact"]);
    assert!(compacted.contains("compacted WAL"));
    assert_eq!(
        ok_stdout(&data, &["deployed", &model_id, "production"]),
        instance_id
    );
    assert_eq!(ok_stdout(&data, &["stage", &instance_id]), "evaluated");

    // models listing survives restarts (every call is its own process)
    let models = ok_stdout(&data, &["models", "--project", "marketplace"]);
    assert!(models.contains(&model_id) && models.contains(&upstream_id));

    let _ = std::fs::remove_dir_all(&data);
}

#[test]
fn cli_errors_are_reported() {
    let data = data_dir();
    let out = gallery(&data, &["fetch", "no-such-instance", "/tmp/x"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("error"));
    let out = gallery(&data, &["unknown-command"]);
    assert!(!out.status.success());
    let _ = std::fs::remove_dir_all(&data);
}
