//! Cross-crate durability: a Gallery over the WAL-backed metadata store
//! and the local-FS blob store survives a full restart with models,
//! instances, metrics, deployments, dependencies, and blobs intact.

use bytes::Bytes;
use gallery_core::{
    Gallery, InstanceSpec, Metadata, MetricScope, MetricSpec, ModelSpec, SystemClock,
};
use gallery_store::blob::localfs::LocalFsBlobStore;
use gallery_store::{Dal, MetadataStore, SyncPolicy};
use std::path::PathBuf;
use std::sync::Arc;

fn fresh_dir(name: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("gallery-durability-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn open_gallery(dir: &std::path::Path) -> Gallery {
    let meta = MetadataStore::durable(dir.join("wal.log"), SyncPolicy::Never).unwrap();
    let blobs = LocalFsBlobStore::open(dir.join("blobs")).unwrap();
    let dal = Dal::new(Arc::new(meta), Arc::new(blobs));
    Gallery::open(Arc::new(dal), Arc::new(SystemClock)).unwrap()
}

#[test]
fn restart_preserves_everything() {
    let dir = fresh_dir("restart");

    let (model_id, inst_id, upstream_id);
    {
        let g = open_gallery(&dir);
        let model = g
            .create_model(ModelSpec::new("p", "durable_demand").name("rf").owner("fc"))
            .unwrap();
        let upstream = g
            .create_model(ModelSpec::new("p", "durable_upstream").name("lr"))
            .unwrap();
        let inst = g
            .upload_instance(
                &model.id,
                InstanceSpec::new().metadata(Metadata::new().with("city", "sf")),
                Bytes::from_static(b"durable weights"),
            )
            .unwrap();
        g.upload_instance(&upstream.id, InstanceSpec::new(), Bytes::from_static(b"up"))
            .unwrap();
        g.insert_metric(
            &inst.id,
            MetricSpec::new("mape", MetricScope::Validation, 0.07),
        )
        .unwrap();
        g.deploy(&model.id, &inst.id, "production").unwrap();
        g.add_dependency(&model.id, &upstream.id).unwrap();
        model_id = model.id;
        inst_id = inst.id;
        upstream_id = upstream.id;
    } // drop: everything flushed through the WAL and blob files

    // "Restart": a brand new Gallery over the same directory.
    let g = open_gallery(&dir);
    let model = g.get_model(&model_id).unwrap();
    assert_eq!(model.name, "rf");
    let inst = g.get_instance(&inst_id).unwrap();
    assert_eq!(inst.metadata.get_str("city"), Some("sf"));
    assert_eq!(
        g.fetch_instance_blob(&inst_id).unwrap(),
        Bytes::from_static(b"durable weights")
    );
    let metric = g
        .latest_metric(&inst_id, "mape", MetricScope::Validation)
        .unwrap()
        .unwrap();
    assert_eq!(metric.value, 0.07);
    assert_eq!(
        g.deployed_instance(&model_id, "production").unwrap(),
        Some(inst_id.clone())
    );
    assert_eq!(g.upstream_of(&model_id).unwrap(), vec![upstream_id]);

    // New writes continue on top of the recovered state.
    let v2 = g
        .upload_instance(&model_id, InstanceSpec::new(), Bytes::from_static(b"v2"))
        .unwrap();
    assert_eq!(v2.display_version.to_string(), "1.2");
}

#[test]
fn deprecation_survives_restart() {
    let dir = fresh_dir("deprecate");
    let inst_id;
    {
        let g = open_gallery(&dir);
        let model = g
            .create_model(ModelSpec::new("p", "dep_base").name("m"))
            .unwrap();
        let inst = g
            .upload_instance(&model.id, InstanceSpec::new(), Bytes::from_static(b"x"))
            .unwrap();
        g.deprecate_instance(&inst.id).unwrap();
        inst_id = inst.id;
    }
    let g = open_gallery(&dir);
    assert!(g.get_instance(&inst_id).unwrap().deprecated);
}

#[test]
fn consistency_audit_clean_after_restart() {
    let dir = fresh_dir("audit");
    {
        let g = open_gallery(&dir);
        let model = g
            .create_model(ModelSpec::new("p", "audit_base").name("m"))
            .unwrap();
        for i in 0..10 {
            g.upload_instance(
                &model.id,
                InstanceSpec::new(),
                Bytes::from(format!("weights-{i}")),
            )
            .unwrap();
        }
    }
    let g = open_gallery(&dir);
    let report = g.dal().audit_consistency(&["instances"]).unwrap();
    assert!(report.is_consistent());
    assert_eq!(report.rows_checked, 10);
}
